"""Drive traces through the front-end structure simulators.

These functions are the microarchitecture-dependent pintools of
Section IV: each one walks the dynamic trace and reports misses per
kilo-instruction (MPKI) for a branch predictor, a BTB, or an I-cache,
optionally restricted to the serial or parallel code section.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.configs import FrontEndConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.predictors import BranchPredictor
from repro.trace.columns import program_columns
from repro.trace.events import Trace
from repro.trace.instruction import BranchKind, CodeSection


@dataclass
class BranchPredictionResult:
    """Outcome of simulating a direction predictor over a trace section."""

    predictor_name: str
    section: CodeSection
    instruction_count: int
    conditional_branches: int
    mispredictions: int
    mispredicted_not_taken: int
    mispredicted_taken_backward: int
    mispredicted_taken_forward: int

    @property
    def mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        if self.instruction_count == 0:
            return 0.0
        return self.mispredictions * 1000.0 / self.instruction_count

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per executed conditional branch."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    def breakdown_mpki(self) -> dict:
        """MPKI split by the outcome class of the mispredicted branch."""
        if self.instruction_count == 0:
            return {"not taken": 0.0, "taken backward": 0.0, "taken forward": 0.0}
        scale = 1000.0 / self.instruction_count
        return {
            "not taken": self.mispredicted_not_taken * scale,
            "taken backward": self.mispredicted_taken_backward * scale,
            "taken forward": self.mispredicted_taken_forward * scale,
        }


@dataclass
class BTBResult:
    """Outcome of simulating a branch target buffer over a trace section."""

    entries: int
    associativity: int
    section: CodeSection
    instruction_count: int
    taken_branches: int
    misses: int

    @property
    def mpki(self) -> float:
        """BTB misses per kilo-instruction."""
        if self.instruction_count == 0:
            return 0.0
        return self.misses * 1000.0 / self.instruction_count

    @property
    def miss_rate(self) -> float:
        """Misses per taken branch lookup."""
        if self.taken_branches == 0:
            return 0.0
        return self.misses / self.taken_branches


@dataclass
class ICacheResult:
    """Outcome of simulating an instruction cache over a trace section."""

    size_bytes: int
    line_bytes: int
    associativity: int
    section: CodeSection
    instruction_count: int
    accesses: int
    misses: int

    @property
    def mpki(self) -> float:
        """I-cache misses per kilo-instruction."""
        if self.instruction_count == 0:
            return 0.0
        return self.misses * 1000.0 / self.instruction_count

    @property
    def miss_rate(self) -> float:
        """Misses per line access."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass
class FrontEndResult:
    """MPKI of the three front-end structures for one configuration."""

    config_name: str
    section: CodeSection
    branch: BranchPredictionResult
    btb: BTBResult
    icache: ICacheResult


def simulate_branch_predictor(
    trace: Trace,
    predictor: BranchPredictor,
    section: CodeSection = CodeSection.TOTAL,
) -> BranchPredictionResult:
    """Measure the branch MPKI of a direction predictor on one trace.

    The conditional-branch stream is gathered from the trace columns in
    one shot; the predictor runs its batch path (vectorized for static
    predictors, a tight inlined loop for the stateful ones) and the
    misprediction breakdown is tallied with boolean-mask reductions.
    """
    columns = trace.branch_columns(section)
    mask = columns.is_conditional
    addresses = columns.addresses[mask]
    taken = columns.taken[mask]
    targets = columns.targets[mask]
    conditional = int(addresses.shape[0])

    predictions = predictor.simulate_sequence(addresses, taken, targets)

    wrong = predictions != taken
    mispredictions = int(np.count_nonzero(wrong))
    miss_not_taken = int(np.count_nonzero(wrong & ~taken))
    backward = (targets >= 0) & (targets < addresses)
    miss_taken_backward = int(np.count_nonzero(wrong & taken & backward))
    miss_taken_forward = mispredictions - miss_not_taken - miss_taken_backward

    return BranchPredictionResult(
        predictor_name=predictor.name,
        section=section,
        instruction_count=trace.instruction_count(section),
        conditional_branches=conditional,
        mispredictions=mispredictions,
        mispredicted_not_taken=miss_not_taken,
        mispredicted_taken_backward=miss_taken_backward,
        mispredicted_taken_forward=miss_taken_forward,
    )


def simulate_btb(
    trace: Trace,
    btb: Optional[BranchTargetBuffer] = None,
    section: CodeSection = CodeSection.TOTAL,
    entries: int = 2048,
    associativity: int = 4,
    include_returns: bool = False,
) -> BTBResult:
    """Measure BTB MPKI: taken branches that miss in the target buffer.

    Returns are excluded by default because their targets are supplied
    by the return address stack rather than the BTB.
    """
    if btb is None:
        btb = BranchTargetBuffer(entries, associativity)
    columns = trace.branch_columns(section)
    mask = columns.taken & (columns.targets >= 0)
    if not include_returns:
        mask &= columns.kinds != int(BranchKind.RETURN)
    addresses = columns.addresses[mask]
    targets = columns.targets[mask]
    taken_branches = int(addresses.shape[0])
    misses = btb.access_sequence(addresses, targets)
    return BTBResult(
        entries=btb.entries,
        associativity=btb.associativity,
        section=section,
        instruction_count=trace.instruction_count(section),
        taken_branches=taken_branches,
        misses=misses,
    )


def simulate_icache(
    trace: Trace,
    cache: Optional[InstructionCache] = None,
    section: CodeSection = CodeSection.TOTAL,
    size_bytes: int = 32 * 1024,
    line_bytes: int = 64,
    associativity: int = 4,
) -> ICacheResult:
    """Measure I-cache MPKI with sequential-fetch access semantics."""
    if cache is None:
        cache = InstructionCache(size_bytes, line_bytes, associativity)
    block_ids, _, _, _ = trace.event_columns(section)
    static = program_columns(trace.program)
    misses = cache.fetch_ranges(
        static.addresses[block_ids], static.size_bytes[block_ids]
    )
    return ICacheResult(
        size_bytes=cache.size_bytes,
        line_bytes=cache.line_bytes,
        associativity=cache.associativity,
        section=section,
        instruction_count=trace.instruction_count(section),
        accesses=cache.accesses,
        misses=misses,
    )


def simulate_frontend(
    trace: Trace,
    config: FrontEndConfig,
    section: CodeSection = CodeSection.TOTAL,
) -> FrontEndResult:
    """Simulate all three structures of a front-end configuration."""
    branch = simulate_branch_predictor(trace, config.predictor.build(), section)
    btb = simulate_btb(trace, config.btb.build(), section)
    icache = simulate_icache(trace, config.icache.build(), section)
    return FrontEndResult(
        config_name=config.name,
        section=section,
        branch=branch,
        btb=btb,
        icache=icache,
    )


class _SectionStreams:
    """The decoded input streams of one trace section, gathered once.

    Holds exactly the arrays the three structure simulators consume --
    the conditional-branch stream (direction prediction), the
    taken-non-return stream (BTB lookups), and the fetched line ranges
    (I-cache) -- so a batch over many configurations pays the masked
    gathers once instead of once per configuration.  The BTB and line
    streams are decoded lazily, so predictor-only batches
    (:func:`simulate_branch_predictors`) never gather them.
    """

    def __init__(self, trace: Trace, section: CodeSection) -> None:
        self._trace = trace
        self.section = section
        self.instruction_count = trace.instruction_count(section)
        self._columns = trace.branch_columns(section)

        conditional = self._columns.is_conditional
        self.cond_addresses = self._columns.addresses[conditional]
        self.cond_taken = self._columns.taken[conditional]
        self.cond_targets = self._columns.targets[conditional]
        self.cond_backward = (self.cond_targets >= 0) & (
            self.cond_targets < self.cond_addresses
        )
        self.conditional_count = int(self.cond_addresses.shape[0])

    @functools.cached_property
    def _btb_stream(self) -> Tuple[np.ndarray, np.ndarray]:
        """Addresses and targets of the taken non-return branches."""
        columns = self._columns
        mask = columns.taken & (columns.targets >= 0)
        mask &= columns.kinds != int(BranchKind.RETURN)
        return columns.addresses[mask], columns.targets[mask]

    @functools.cached_property
    def _line_stream(self) -> Tuple[np.ndarray, np.ndarray]:
        """Start addresses and byte sizes of the fetched block ranges."""
        block_ids, _, _, _ = self._trace.event_columns(self.section)
        static = program_columns(self._trace.program)
        return static.addresses[block_ids], static.size_bytes[block_ids]

    def run_predictor(self, predictor: BranchPredictor) -> BranchPredictionResult:
        """Run one direction predictor over the shared conditional stream."""
        predictions = predictor.simulate_sequence(
            self.cond_addresses, self.cond_taken, self.cond_targets
        )
        wrong = predictions != self.cond_taken
        mispredictions = int(np.count_nonzero(wrong))
        miss_not_taken = int(np.count_nonzero(wrong & ~self.cond_taken))
        miss_taken_backward = int(
            np.count_nonzero(wrong & self.cond_taken & self.cond_backward)
        )
        return BranchPredictionResult(
            predictor_name=predictor.name,
            section=self.section,
            instruction_count=self.instruction_count,
            conditional_branches=self.conditional_count,
            mispredictions=mispredictions,
            mispredicted_not_taken=miss_not_taken,
            mispredicted_taken_backward=miss_taken_backward,
            mispredicted_taken_forward=(
                mispredictions - miss_not_taken - miss_taken_backward
            ),
        )

    def run_btb(self, btb: BranchTargetBuffer) -> BTBResult:
        """Run one BTB over the shared taken-branch stream."""
        addresses, targets = self._btb_stream
        misses = btb.access_sequence(addresses, targets)
        return BTBResult(
            entries=btb.entries,
            associativity=btb.associativity,
            section=self.section,
            instruction_count=self.instruction_count,
            taken_branches=int(addresses.shape[0]),
            misses=misses,
        )

    def run_icache(self, cache: InstructionCache) -> ICacheResult:
        """Run one I-cache over the shared fetched-line stream."""
        addresses, sizes = self._line_stream
        misses = cache.fetch_ranges(addresses, sizes)
        return ICacheResult(
            size_bytes=cache.size_bytes,
            line_bytes=cache.line_bytes,
            associativity=cache.associativity,
            section=self.section,
            instruction_count=self.instruction_count,
            accesses=cache.accesses,
            misses=misses,
        )


def simulate_branch_predictors(
    trace: Trace,
    predictors: Sequence[BranchPredictor],
    section: CodeSection = CodeSection.TOTAL,
) -> List[BranchPredictionResult]:
    """Measure many direction predictors on one trace section.

    The conditional-branch stream is decoded **once** and every
    predictor runs over the shared columnar view, so an N-configuration
    sweep (Figures 5/6) pays one set of masked gathers instead of N.
    Results are bit-identical to calling
    :func:`simulate_branch_predictor` per predictor.
    """
    streams = _SectionStreams(trace, section)
    return [streams.run_predictor(predictor) for predictor in predictors]


def simulate_frontend_many(
    trace: Trace,
    configs: Sequence[FrontEndConfig],
    sections: Sequence[CodeSection] = (CodeSection.TOTAL,),
) -> Dict[Tuple[str, CodeSection], FrontEndResult]:
    """Simulate many front-end configurations over one trace, batched.

    This is the multi-configuration engine: per section, the branch and
    fetched-line streams are decoded **once** (one set of masked
    gathers) and every configuration's predictor, BTB, and I-cache run
    over the shared columnar views.  Identical sub-configurations
    (e.g. two front-ends sharing one BTB geometry) are simulated once
    and their result object reused, since the simulations are
    deterministic functions of (geometry, stream).

    Returns ``(config.name, section) -> FrontEndResult``; every result
    is bit-identical to a per-config :func:`simulate_frontend` call
    (asserted in the test suite).
    """
    results: Dict[Tuple[str, CodeSection], FrontEndResult] = {}
    predictor_memo: Dict[tuple, BranchPredictionResult] = {}
    btb_memo: Dict[tuple, BTBResult] = {}
    icache_memo: Dict[tuple, ICacheResult] = {}
    for section in sections:
        streams = _SectionStreams(trace, section)
        for config in configs:
            predictor_key = (config.predictor, section)
            branch = predictor_memo.get(predictor_key)
            if branch is None:
                branch = streams.run_predictor(config.predictor.build())
                predictor_memo[predictor_key] = branch
            btb_key = (config.btb, section)
            btb = btb_memo.get(btb_key)
            if btb is None:
                btb = streams.run_btb(config.btb.build())
                btb_memo[btb_key] = btb
            icache_key = (config.icache, section)
            icache = icache_memo.get(icache_key)
            if icache is None:
                icache = streams.run_icache(config.icache.build())
                icache_memo[icache_key] = icache
            results[(config.name, section)] = FrontEndResult(
                config_name=config.name,
                section=section,
                branch=branch,
                btb=btb,
                icache=icache,
            )
    return results
