"""Drive traces through the front-end structure simulators.

These functions are the microarchitecture-dependent pintools of
Section IV: each one walks the dynamic trace and reports misses per
kilo-instruction (MPKI) for a branch predictor, a BTB, or an I-cache,
optionally restricted to the serial or parallel code section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.configs import FrontEndConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.predictors import BranchPredictor
from repro.trace.columns import program_columns
from repro.trace.events import Trace
from repro.trace.instruction import BranchKind, CodeSection


@dataclass
class BranchPredictionResult:
    """Outcome of simulating a direction predictor over a trace section."""

    predictor_name: str
    section: CodeSection
    instruction_count: int
    conditional_branches: int
    mispredictions: int
    mispredicted_not_taken: int
    mispredicted_taken_backward: int
    mispredicted_taken_forward: int

    @property
    def mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        if self.instruction_count == 0:
            return 0.0
        return self.mispredictions * 1000.0 / self.instruction_count

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per executed conditional branch."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    def breakdown_mpki(self) -> dict:
        """MPKI split by the outcome class of the mispredicted branch."""
        if self.instruction_count == 0:
            return {"not taken": 0.0, "taken backward": 0.0, "taken forward": 0.0}
        scale = 1000.0 / self.instruction_count
        return {
            "not taken": self.mispredicted_not_taken * scale,
            "taken backward": self.mispredicted_taken_backward * scale,
            "taken forward": self.mispredicted_taken_forward * scale,
        }


@dataclass
class BTBResult:
    """Outcome of simulating a branch target buffer over a trace section."""

    entries: int
    associativity: int
    section: CodeSection
    instruction_count: int
    taken_branches: int
    misses: int

    @property
    def mpki(self) -> float:
        """BTB misses per kilo-instruction."""
        if self.instruction_count == 0:
            return 0.0
        return self.misses * 1000.0 / self.instruction_count

    @property
    def miss_rate(self) -> float:
        """Misses per taken branch lookup."""
        if self.taken_branches == 0:
            return 0.0
        return self.misses / self.taken_branches


@dataclass
class ICacheResult:
    """Outcome of simulating an instruction cache over a trace section."""

    size_bytes: int
    line_bytes: int
    associativity: int
    section: CodeSection
    instruction_count: int
    accesses: int
    misses: int

    @property
    def mpki(self) -> float:
        """I-cache misses per kilo-instruction."""
        if self.instruction_count == 0:
            return 0.0
        return self.misses * 1000.0 / self.instruction_count

    @property
    def miss_rate(self) -> float:
        """Misses per line access."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass
class FrontEndResult:
    """MPKI of the three front-end structures for one configuration."""

    config_name: str
    section: CodeSection
    branch: BranchPredictionResult
    btb: BTBResult
    icache: ICacheResult


def simulate_branch_predictor(
    trace: Trace,
    predictor: BranchPredictor,
    section: CodeSection = CodeSection.TOTAL,
) -> BranchPredictionResult:
    """Measure the branch MPKI of a direction predictor on one trace.

    The conditional-branch stream is gathered from the trace columns in
    one shot; the predictor runs its batch path (vectorized for static
    predictors, a tight inlined loop for the stateful ones) and the
    misprediction breakdown is tallied with boolean-mask reductions.
    """
    columns = trace.branch_columns(section)
    mask = columns.is_conditional
    addresses = columns.addresses[mask]
    taken = columns.taken[mask]
    targets = columns.targets[mask]
    conditional = int(addresses.shape[0])

    predictions = predictor.simulate_sequence(addresses, taken, targets)

    wrong = predictions != taken
    mispredictions = int(np.count_nonzero(wrong))
    miss_not_taken = int(np.count_nonzero(wrong & ~taken))
    backward = (targets >= 0) & (targets < addresses)
    miss_taken_backward = int(np.count_nonzero(wrong & taken & backward))
    miss_taken_forward = mispredictions - miss_not_taken - miss_taken_backward

    return BranchPredictionResult(
        predictor_name=predictor.name,
        section=section,
        instruction_count=trace.instruction_count(section),
        conditional_branches=conditional,
        mispredictions=mispredictions,
        mispredicted_not_taken=miss_not_taken,
        mispredicted_taken_backward=miss_taken_backward,
        mispredicted_taken_forward=miss_taken_forward,
    )


def simulate_btb(
    trace: Trace,
    btb: Optional[BranchTargetBuffer] = None,
    section: CodeSection = CodeSection.TOTAL,
    entries: int = 2048,
    associativity: int = 4,
    include_returns: bool = False,
) -> BTBResult:
    """Measure BTB MPKI: taken branches that miss in the target buffer.

    Returns are excluded by default because their targets are supplied
    by the return address stack rather than the BTB.
    """
    if btb is None:
        btb = BranchTargetBuffer(entries, associativity)
    columns = trace.branch_columns(section)
    mask = columns.taken & (columns.targets >= 0)
    if not include_returns:
        mask &= columns.kinds != int(BranchKind.RETURN)
    addresses = columns.addresses[mask]
    targets = columns.targets[mask]
    taken_branches = int(addresses.shape[0])
    misses = btb.access_sequence(addresses, targets)
    return BTBResult(
        entries=btb.entries,
        associativity=btb.associativity,
        section=section,
        instruction_count=trace.instruction_count(section),
        taken_branches=taken_branches,
        misses=misses,
    )


def simulate_icache(
    trace: Trace,
    cache: Optional[InstructionCache] = None,
    section: CodeSection = CodeSection.TOTAL,
    size_bytes: int = 32 * 1024,
    line_bytes: int = 64,
    associativity: int = 4,
) -> ICacheResult:
    """Measure I-cache MPKI with sequential-fetch access semantics."""
    if cache is None:
        cache = InstructionCache(size_bytes, line_bytes, associativity)
    block_ids, _, _, _ = trace.event_columns(section)
    static = program_columns(trace.program)
    misses = cache.fetch_ranges(
        static.addresses[block_ids], static.size_bytes[block_ids]
    )
    return ICacheResult(
        size_bytes=cache.size_bytes,
        line_bytes=cache.line_bytes,
        associativity=cache.associativity,
        section=section,
        instruction_count=trace.instruction_count(section),
        accesses=cache.accesses,
        misses=misses,
    )


def simulate_frontend(
    trace: Trace,
    config: FrontEndConfig,
    section: CodeSection = CodeSection.TOTAL,
) -> FrontEndResult:
    """Simulate all three structures of a front-end configuration."""
    branch = simulate_branch_predictor(trace, config.predictor.build(), section)
    btb = simulate_btb(trace, config.btb.build(), section)
    icache = simulate_icache(trace, config.icache.build(), section)
    return FrontEndResult(
        config_name=config.name,
        section=section,
        branch=branch,
        btb=btb,
        icache=icache,
    )
