"""Static (stateless) direction predictors.

These are the classic compile-time heuristics: predict every branch
taken, every branch not-taken, or backward-taken / forward-not-taken
(BTFN, the heuristic that exploits the loop-back-edge bias Table I
measures).  Because they keep no state, their batch path is a single
vectorized expression over the branch columns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontend.predictors.base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predict taken for every conditional branch."""

    name = "always-taken"

    def predict(self, address: int) -> bool:
        return True

    def update(self, address: int, taken: bool) -> None:
        pass

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return np.ones(addresses.shape[0], dtype=bool)

    def storage_bits(self) -> int:
        return 0


class AlwaysNotTakenPredictor(BranchPredictor):
    """Predict not-taken for every conditional branch."""

    name = "always-not-taken"

    def predict(self, address: int) -> bool:
        return False

    def update(self, address: int, taken: bool) -> None:
        pass

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return np.zeros(addresses.shape[0], dtype=bool)

    def storage_bits(self) -> int:
        return 0


class BackwardTakenPredictor(BranchPredictor):
    """BTFN: backward branches predicted taken, forward ones not-taken.

    The direction requires the branch target, which the scalar
    :meth:`predict` signature does not carry; use the batch path
    (:meth:`simulate_sequence`) where the targets column is available.
    A branch with no resolvable target is predicted not-taken.
    """

    name = "btfn"

    def predict(self, address: int) -> bool:
        return False

    def update(self, address: int, taken: bool) -> None:
        pass

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if targets is None:
            return np.zeros(addresses.shape[0], dtype=bool)
        return (targets >= 0) & (targets < addresses)

    def storage_bits(self) -> int:
        return 0
