"""McFarling's gshare predictor.

A single table of two-bit counters indexed by the branch address XORed
with the global branch history register.  The paper's configurations
use ``m = 13`` history/index bits for the ~2KB budget and ``m = 16`` for
the ~16KB budget (hardware cost ``2^(m+1)`` bits, Table II).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontend.predictors.base import BranchPredictor, SaturatingCounter


class GsharePredictor(BranchPredictor):
    """Global-history XOR-indexed two-bit counter table."""

    name = "gshare"

    def __init__(self, history_bits: int = 13) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be at least 1")
        self.history_bits = history_bits
        self.entries = 1 << history_bits
        self._mask = self.entries - 1
        self._table = [2] * self.entries  # weakly taken
        self._history = 0

    def _index(self, address: int) -> int:
        return ((address >> 2) ^ self._history) & self._mask

    def predict(self, address: int) -> bool:
        return SaturatingCounter.taken(self._table[self._index(address)])

    def update(self, address: int, taken: bool) -> None:
        index = self._index(address)
        self._table[index] = SaturatingCounter.update(self._table[index], taken)
        self._history = ((self._history << 1) | int(taken)) & self._mask

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predict/update inlined into one loop with table and history local."""
        predictions = []
        append = predictions.append
        table = self._table
        mask = self._mask
        history = self._history
        for address, outcome in zip(addresses.tolist(), taken.tolist()):
            index = ((address >> 2) ^ history) & mask
            value = table[index]
            append(value >= 2)
            if outcome:
                if value < 3:
                    table[index] = value + 1
                history = ((history << 1) | 1) & mask
            else:
                if value > 0:
                    table[index] = value - 1
                history = (history << 1) & mask
        self._history = history
        return np.array(predictions, dtype=bool)

    def storage_bits(self) -> int:
        # 2-bit counters plus the global history register (Table II
        # counts only the table: 2^(m+1) bits; the register is noise).
        return 2 * self.entries + self.history_bits
