"""TAGE: TAgged GEometric history length branch predictor.

A base bimodal predictor plus a set of partially tagged tables indexed
with hashes of geometrically increasing global history lengths (Seznec,
JILP 2006).  The configuration knobs follow the paper's Table II: the
"big" (~16KB-class) configuration uses 12 tagged components, the
"small" (~2KB) configuration keeps only two components with history
lengths 4 and 16 and roughly a third of the entries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend.predictors.base import BranchPredictor, index_bits
from repro.frontend.predictors.bimodal import BimodalPredictor


class _FoldedHistory:
    """Global history folded (XOR-compressed) to a fixed width.

    Maintained incrementally: each update shifts in the newest history
    bit and removes the bit that just left the history window, keeping
    the folded register equal to the XOR of consecutive chunks of the
    last ``original_length`` history bits.
    """

    def __init__(self, original_length: int, compressed_length: int) -> None:
        self.original_length = original_length
        self.compressed_length = compressed_length
        self.outpoint = original_length % compressed_length
        self.mask = (1 << compressed_length) - 1
        self.value = 0

    def update(self, new_bit: int, evicted_bit: int) -> None:
        value = ((self.value << 1) | new_bit) & ((self.mask << 1) | 1)
        value ^= evicted_bit << self.outpoint
        value ^= value >> self.compressed_length
        self.value = value & self.mask


class _TaggedTable:
    """One tagged TAGE component."""

    def __init__(self, entries: int, tag_bits: int, history_length: int) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.history_length = history_length
        self.index_bits = index_bits(entries)
        self.counters = [3] * entries  # 3-bit counters, 3 = weak not-taken
        self.tags = [0] * entries
        self.useful = [0] * entries
        self.index_fold = _FoldedHistory(history_length, self.index_bits)
        self.tag_fold_a = _FoldedHistory(history_length, tag_bits)
        self.tag_fold_b = _FoldedHistory(history_length, max(1, tag_bits - 1))

    def index(self, address: int) -> int:
        pc = address >> 2
        value = pc ^ (pc >> self.index_bits) ^ self.index_fold.value
        return value & (self.entries - 1)

    def tag(self, address: int) -> int:
        pc = address >> 2
        value = pc ^ self.tag_fold_a.value ^ (self.tag_fold_b.value << 1)
        return value & ((1 << self.tag_bits) - 1)

    def storage_bits(self) -> int:
        return self.entries * (3 + 2 + self.tag_bits)


def _geometric_lengths(minimum: int, maximum: int, count: int) -> List[int]:
    """History lengths forming a geometric series from minimum to maximum."""
    if count == 1:
        return [minimum]
    lengths = []
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    for index in range(count):
        length = int(round(minimum * (ratio ** index)))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


class TagePredictor(BranchPredictor):
    """Base bimodal predictor plus tagged geometric-history components."""

    name = "tage"

    def __init__(
        self,
        num_tables: int = 12,
        entries_per_table: int = 512,
        tag_bits: int = 10,
        min_history: int = 4,
        max_history: int = 300,
        base_entries: int = 8192,
        useful_reset_period: int = 256 * 1024,
    ) -> None:
        if num_tables < 1:
            raise ValueError("TAGE needs at least one tagged table")
        self.base = BimodalPredictor(base_entries)
        lengths = _geometric_lengths(min_history, max_history, num_tables)
        self.tables = [
            _TaggedTable(entries_per_table, tag_bits, length) for length in lengths
        ]
        self.max_history = max(lengths)
        self._history = [0] * self.max_history  # newest bit at position 0
        self._useful_reset_period = useful_reset_period
        self._updates_since_reset = 0
        self._allocation_seed = 0x12345
        self._last: Optional[Tuple[int, List[int], List[int], Optional[int], bool, bool]] = None

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _lookup(self, address: int):
        indices = [table.index(address) for table in self.tables]
        tags = [table.tag(address) for table in self.tables]
        provider = None
        alternate = None
        for table_id in range(len(self.tables) - 1, -1, -1):
            if self.tables[table_id].tags[indices[table_id]] == tags[table_id]:
                if provider is None:
                    provider = table_id
                elif alternate is None:
                    alternate = table_id
                    break
        if provider is not None:
            table = self.tables[provider]
            provider_pred = table.counters[indices[provider]] >= 4
        else:
            provider_pred = self.base.predict(address)
        if alternate is not None:
            alt_table = self.tables[alternate]
            alternate_pred = alt_table.counters[indices[alternate]] >= 4
        else:
            alternate_pred = self.base.predict(address)
        return indices, tags, provider, alternate, provider_pred, alternate_pred

    def predict(self, address: int) -> bool:
        indices, tags, provider, alternate, provider_pred, alternate_pred = self._lookup(
            address
        )
        self._last = (address, indices, tags, provider, alternate, provider_pred, alternate_pred)
        return provider_pred

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def update(self, address: int, taken: bool) -> None:
        if self._last is None or self._last[0] != address:
            self.predict(address)
        _, indices, tags, provider, alternate, provider_pred, alternate_pred = self._last
        self._last = None

        correct = provider_pred == taken

        # Update usefulness of the provider when it differed from the
        # alternate prediction.
        if provider is not None and provider_pred != alternate_pred:
            entry = indices[provider]
            useful = self.tables[provider].useful[entry]
            if correct:
                self.tables[provider].useful[entry] = min(3, useful + 1)
            else:
                self.tables[provider].useful[entry] = max(0, useful - 1)

        # Train the provider (or the base predictor).
        if provider is not None:
            entry = indices[provider]
            counter = self.tables[provider].counters[entry]
            if taken:
                counter = min(7, counter + 1)
            else:
                counter = max(0, counter - 1)
            self.tables[provider].counters[entry] = counter
            # Also train the base predictor when the provider entry is weak.
            if counter in (3, 4):
                self.base.update(address, taken)
        else:
            self.base.update(address, taken)

        # On a misprediction, try to allocate an entry in a table with a
        # longer history than the provider.
        if not correct:
            self._allocate(address, taken, indices, tags, provider)

        self._advance_history(address, taken)
        self._maybe_reset_useful()

    def _allocate(
        self,
        address: int,
        taken: bool,
        indices: List[int],
        tags: List[int],
        provider: Optional[int],
    ) -> None:
        start = 0 if provider is None else provider + 1
        candidates = [
            table_id
            for table_id in range(start, len(self.tables))
            if self.tables[table_id].useful[indices[table_id]] == 0
        ]
        if not candidates:
            for table_id in range(start, len(self.tables)):
                entry = indices[table_id]
                self.tables[table_id].useful[entry] = max(
                    0, self.tables[table_id].useful[entry] - 1
                )
            return
        # Pseudo-random choice among the first two candidates (favours
        # shorter histories, as in the original proposal).
        self._allocation_seed = (self._allocation_seed * 1103515245 + 12345) & 0x7FFFFFFF
        choice = candidates[0]
        if len(candidates) > 1 and (self._allocation_seed & 0x3) == 0:
            choice = candidates[1]
        entry = indices[choice]
        table = self.tables[choice]
        table.tags[entry] = tags[choice]
        table.counters[entry] = 4 if taken else 3
        table.useful[entry] = 0

    def _advance_history(self, address: int, taken: bool) -> None:
        evicted_bits = {}
        for table in self.tables:
            evicted_bits[table.history_length] = self._history[table.history_length - 1]
        new_bit = int(taken) ^ ((address >> 2) & 1)
        self._history.insert(0, new_bit)
        self._history.pop()
        for table in self.tables:
            evicted = evicted_bits[table.history_length]
            table.index_fold.update(new_bit, evicted)
            table.tag_fold_a.update(new_bit, evicted)
            table.tag_fold_b.update(new_bit, evicted)

    def _maybe_reset_useful(self) -> None:
        self._updates_since_reset += 1
        if self._updates_since_reset < self._useful_reset_period:
            return
        self._updates_since_reset = 0
        for table in self.tables:
            table.useful = [value >> 1 for value in table.useful]

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.base.storage_bits() + sum(
            table.storage_bits() for table in self.tables
        )
