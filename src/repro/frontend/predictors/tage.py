"""TAGE: TAgged GEometric history length branch predictor.

A base bimodal predictor plus a set of partially tagged tables indexed
with hashes of geometrically increasing global history lengths (Seznec,
JILP 2006).  The configuration knobs follow the paper's Table II: the
"big" (~16KB-class) configuration uses 12 tagged components, the
"small" (~2KB) configuration keeps only two components with history
lengths 4 and 16 and roughly a third of the entries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.frontend.predictors.base import BranchPredictor, index_bits
from repro.frontend.predictors.bimodal import BimodalPredictor


class _FoldedHistory:
    """Global history folded (XOR-compressed) to a fixed width.

    Maintained incrementally: each update shifts in the newest history
    bit and removes the bit that just left the history window, keeping
    the folded register equal to the XOR of consecutive chunks of the
    last ``original_length`` history bits.
    """

    def __init__(self, original_length: int, compressed_length: int) -> None:
        self.original_length = original_length
        self.compressed_length = compressed_length
        self.outpoint = original_length % compressed_length
        self.mask = (1 << compressed_length) - 1
        self.value = 0

    def update(self, new_bit: int, evicted_bit: int) -> None:
        value = ((self.value << 1) | new_bit) & ((self.mask << 1) | 1)
        value ^= evicted_bit << self.outpoint
        value ^= value >> self.compressed_length
        self.value = value & self.mask


class _TaggedTable:
    """One tagged TAGE component."""

    def __init__(self, entries: int, tag_bits: int, history_length: int) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.history_length = history_length
        self.index_bits = index_bits(entries)
        self.counters = [3] * entries  # 3-bit counters, 3 = weak not-taken
        self.tags = [0] * entries
        self.useful = [0] * entries
        self.index_fold = _FoldedHistory(history_length, self.index_bits)
        self.tag_fold_a = _FoldedHistory(history_length, tag_bits)
        self.tag_fold_b = _FoldedHistory(history_length, max(1, tag_bits - 1))

    def index(self, address: int) -> int:
        pc = address >> 2
        value = pc ^ (pc >> self.index_bits) ^ self.index_fold.value
        return value & (self.entries - 1)

    def tag(self, address: int) -> int:
        pc = address >> 2
        value = pc ^ self.tag_fold_a.value ^ (self.tag_fold_b.value << 1)
        return value & ((1 << self.tag_bits) - 1)

    def storage_bits(self) -> int:
        return self.entries * (3 + 2 + self.tag_bits)


def _geometric_lengths(minimum: int, maximum: int, count: int) -> List[int]:
    """History lengths forming a geometric series from minimum to maximum."""
    if count == 1:
        return [minimum]
    lengths = []
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    for index in range(count):
        length = int(round(minimum * (ratio ** index)))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


class TagePredictor(BranchPredictor):
    """Base bimodal predictor plus tagged geometric-history components."""

    name = "tage"

    def __init__(
        self,
        num_tables: int = 12,
        entries_per_table: int = 512,
        tag_bits: int = 10,
        min_history: int = 4,
        max_history: int = 300,
        base_entries: int = 8192,
        useful_reset_period: int = 256 * 1024,
    ) -> None:
        if num_tables < 1:
            raise ValueError("TAGE needs at least one tagged table")
        self.base = BimodalPredictor(base_entries)
        lengths = _geometric_lengths(min_history, max_history, num_tables)
        self.tables = [
            _TaggedTable(entries_per_table, tag_bits, length) for length in lengths
        ]
        self.max_history = max(lengths)
        self._history = [0] * self.max_history  # newest bit at position 0
        self._useful_reset_period = useful_reset_period
        self._updates_since_reset = 0
        self._allocation_seed = 0x12345
        self._last: Optional[Tuple[int, List[int], List[int], Optional[int], bool, bool]] = None

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _lookup(self, address: int):
        indices = [table.index(address) for table in self.tables]
        tags = [table.tag(address) for table in self.tables]
        provider = None
        alternate = None
        for table_id in range(len(self.tables) - 1, -1, -1):
            if self.tables[table_id].tags[indices[table_id]] == tags[table_id]:
                if provider is None:
                    provider = table_id
                elif alternate is None:
                    alternate = table_id
                    break
        if provider is not None:
            table = self.tables[provider]
            provider_pred = table.counters[indices[provider]] >= 4
        else:
            provider_pred = self.base.predict(address)
        if alternate is not None:
            alt_table = self.tables[alternate]
            alternate_pred = alt_table.counters[indices[alternate]] >= 4
        else:
            alternate_pred = self.base.predict(address)
        return indices, tags, provider, alternate, provider_pred, alternate_pred

    def predict(self, address: int) -> bool:
        indices, tags, provider, alternate, provider_pred, alternate_pred = self._lookup(
            address
        )
        self._last = (address, indices, tags, provider, alternate, provider_pred, alternate_pred)
        return provider_pred

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def update(self, address: int, taken: bool) -> None:
        if self._last is None or self._last[0] != address:
            self.predict(address)
        _, indices, tags, provider, alternate, provider_pred, alternate_pred = self._last
        self._last = None

        correct = provider_pred == taken

        # Update usefulness of the provider when it differed from the
        # alternate prediction.
        if provider is not None and provider_pred != alternate_pred:
            entry = indices[provider]
            useful = self.tables[provider].useful[entry]
            if correct:
                self.tables[provider].useful[entry] = min(3, useful + 1)
            else:
                self.tables[provider].useful[entry] = max(0, useful - 1)

        # Train the provider (or the base predictor).
        if provider is not None:
            entry = indices[provider]
            counter = self.tables[provider].counters[entry]
            if taken:
                counter = min(7, counter + 1)
            else:
                counter = max(0, counter - 1)
            self.tables[provider].counters[entry] = counter
            # Also train the base predictor when the provider entry is weak.
            if counter in (3, 4):
                self.base.update(address, taken)
        else:
            self.base.update(address, taken)

        # On a misprediction, try to allocate an entry in a table with a
        # longer history than the provider.
        if not correct:
            self._allocate(address, taken, indices, tags, provider)

        self._advance_history(address, taken)
        self._maybe_reset_useful()

    def _allocate(
        self,
        address: int,
        taken: bool,
        indices: List[int],
        tags: List[int],
        provider: Optional[int],
    ) -> None:
        start = 0 if provider is None else provider + 1
        candidates = [
            table_id
            for table_id in range(start, len(self.tables))
            if self.tables[table_id].useful[indices[table_id]] == 0
        ]
        if not candidates:
            for table_id in range(start, len(self.tables)):
                entry = indices[table_id]
                self.tables[table_id].useful[entry] = max(
                    0, self.tables[table_id].useful[entry] - 1
                )
            return
        # Pseudo-random choice among the first two candidates (favours
        # shorter histories, as in the original proposal).
        self._allocation_seed = (self._allocation_seed * 1103515245 + 12345) & 0x7FFFFFFF
        choice = candidates[0]
        if len(candidates) > 1 and (self._allocation_seed & 0x3) == 0:
            choice = candidates[1]
        entry = indices[choice]
        table = self.tables[choice]
        table.tags[entry] = tags[choice]
        table.counters[entry] = 4 if taken else 3
        table.useful[entry] = 0

    def _advance_history(self, address: int, taken: bool) -> None:
        evicted_bits = {}
        for table in self.tables:
            evicted_bits[table.history_length] = self._history[table.history_length - 1]
        new_bit = int(taken) ^ ((address >> 2) & 1)
        self._history.insert(0, new_bit)
        self._history.pop()
        for table in self.tables:
            evicted = evicted_bits[table.history_length]
            table.index_fold.update(new_bit, evicted)
            table.tag_fold_a.update(new_bit, evicted)
            table.tag_fold_b.update(new_bit, evicted)

    def _maybe_reset_useful(self) -> None:
        self._updates_since_reset += 1
        if self._updates_since_reset < self._useful_reset_period:
            return
        self._updates_since_reset = 0
        for table in self.tables:
            table.useful = [value >> 1 for value in table.useful]

    # ------------------------------------------------------------------
    # Batch simulation
    # ------------------------------------------------------------------
    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batch path: fold registers, indices, and tags precomputed
        vectorized; only table state (lookup, training, allocation)
        runs in the scalar loop.

        The history bit fed to TAGE is ``taken ^ (pc & 1)`` -- a pure
        function of the branch stream, independent of table state -- so
        the whole history is known upfront.  A folded register equals
        the XOR of the compressed-width chunks of its history window
        (that is the invariant the incremental update maintains), which
        makes every per-branch fold value a handful of gathers over
        sliding bit windows.  Predictions and state transitions are
        bit-identical to the scalar :meth:`predict`/:meth:`update` pair.
        """
        n = int(addresses.shape[0])
        if n == 0:
            return np.zeros(0, dtype=bool)
        tables = self.tables
        ntables = len(tables)
        max_history = self.max_history

        pcs = (addresses.astype(np.int64) >> 2)
        outcome_bits = taken.astype(np.int64)
        new_bits = outcome_bits ^ (pcs & 1)

        # Extended bit stream: pre-existing history (oldest first), then
        # the bits this batch inserts.  Branch t's history window is the
        # max_history bits ending just before stream position
        # max_history + t.
        old_bits = np.array(self._history[::-1], dtype=np.int64)
        stream = np.concatenate([old_bits, new_bits])
        offset = int(old_bits.shape[0])

        # W[u] = the C-bit window of stream bits ending at u, newest bit
        # in the LSB; one array per distinct compressed width.
        window_cache: dict = {}

        def windows(width: int) -> np.ndarray:
            cached = window_cache.get(width)
            if cached is None:
                cached = stream.copy()
                for i in range(1, width):
                    cached[i:] |= stream[:-i] << i
                window_cache[width] = cached
            return cached

        def fold_values(history_length: int, width: int) -> np.ndarray:
            folded = np.zeros(n, dtype=np.int64)
            chunk_windows = windows(width)
            chunks = (history_length + width - 1) // width
            for j in range(chunks):
                start = offset - 1 - j * width
                values = chunk_windows[start : start + n]
                remainder = history_length - j * width
                if remainder < width:
                    values = values & ((1 << remainder) - 1)
                folded = folded ^ values
            return folded

        indices_l = []
        tags_l = []
        for table in tables:
            fold_index = fold_values(table.history_length, table.index_bits)
            fold_tag_a = fold_values(table.history_length, table.tag_fold_a.compressed_length)
            fold_tag_b = fold_values(table.history_length, table.tag_fold_b.compressed_length)
            indices_l.append(
                ((pcs ^ (pcs >> table.index_bits) ^ fold_index) & (table.entries - 1)).tolist()
            )
            tags_l.append(
                ((pcs ^ fold_tag_a ^ (fold_tag_b << 1)) & ((1 << table.tag_bits) - 1)).tolist()
            )

        counters_store = [t.counters for t in tables]
        tags_store = [t.tags for t in tables]
        useful_store = [t.useful for t in tables]

        base = self.base
        base_table = base._table
        base_threshold = 1 << (base.counter_bits - 1)
        base_ceiling = (1 << base.counter_bits) - 1
        base_indices = (pcs & (base.entries - 1)).tolist()
        outcomes = taken.tolist()

        allocation_seed = self._allocation_seed
        updates_since_reset = self._updates_since_reset
        reset_period = self._useful_reset_period

        predictions = []
        append = predictions.append
        reversed_tables = tuple(range(ntables - 1, -1, -1))
        table_range = range(ntables)

        for position in range(n):
            outcome = outcomes[position]
            provider = None
            alternate = None
            for k in reversed_tables:
                if tags_store[k][indices_l[k][position]] == tags_l[k][position]:
                    if provider is None:
                        provider = k
                    elif alternate is None:
                        alternate = k
                        break
            base_index = base_indices[position]
            base_pred = base_table[base_index] >= base_threshold
            if provider is not None:
                provider_entry = indices_l[provider][position]
                provider_pred = counters_store[provider][provider_entry] >= 4
            else:
                provider_pred = base_pred
            if alternate is not None:
                alternate_pred = (
                    counters_store[alternate][indices_l[alternate][position]] >= 4
                )
            else:
                alternate_pred = base_pred
            append(provider_pred)

            correct = provider_pred == outcome

            if provider is not None and provider_pred != alternate_pred:
                u = useful_store[provider][provider_entry]
                if correct:
                    if u < 3:
                        useful_store[provider][provider_entry] = u + 1
                elif u > 0:
                    useful_store[provider][provider_entry] = u - 1

            if provider is not None:
                counter = counters_store[provider][provider_entry]
                if outcome:
                    if counter < 7:
                        counter += 1
                elif counter > 0:
                    counter -= 1
                counters_store[provider][provider_entry] = counter
                if counter == 3 or counter == 4:
                    value = base_table[base_index]
                    if outcome:
                        if value < base_ceiling:
                            base_table[base_index] = value + 1
                    elif value > 0:
                        base_table[base_index] = value - 1
            else:
                value = base_table[base_index]
                if outcome:
                    if value < base_ceiling:
                        base_table[base_index] = value + 1
                elif value > 0:
                    base_table[base_index] = value - 1

            if not correct:
                start = 0 if provider is None else provider + 1
                candidates = [
                    k
                    for k in range(start, ntables)
                    if useful_store[k][indices_l[k][position]] == 0
                ]
                if not candidates:
                    for k in range(start, ntables):
                        entry = indices_l[k][position]
                        u = useful_store[k][entry]
                        if u > 0:
                            useful_store[k][entry] = u - 1
                else:
                    allocation_seed = (
                        allocation_seed * 1103515245 + 12345
                    ) & 0x7FFFFFFF
                    choice = candidates[0]
                    if len(candidates) > 1 and (allocation_seed & 0x3) == 0:
                        choice = candidates[1]
                    entry = indices_l[choice][position]
                    tags_store[choice][entry] = tags_l[choice][position]
                    counters_store[choice][entry] = 4 if outcome else 3
                    useful_store[choice][entry] = 0

            updates_since_reset += 1
            if updates_since_reset >= reset_period:
                updates_since_reset = 0
                for k in table_range:
                    halved = [value >> 1 for value in useful_store[k]]
                    tables[k].useful = halved
                    useful_store[k] = halved

        # Re-derive the trailing state: history list (newest bit first)
        # and each fold register's value over its final window.
        tail = stream[offset + n - max_history : offset + n][::-1].tolist()
        self._history = tail
        final_history = 0
        for position, bit in enumerate(tail):
            final_history |= bit << position
        for table in tables:
            window = final_history & ((1 << table.history_length) - 1)
            for fold in (table.index_fold, table.tag_fold_a, table.tag_fold_b):
                chunk_mask = (1 << fold.compressed_length) - 1
                value = 0
                remaining = window
                while remaining:
                    value ^= remaining & chunk_mask
                    remaining >>= fold.compressed_length
                fold.value = value
        self._allocation_seed = allocation_seed
        self._updates_since_reset = updates_since_reset
        self._last = None
        return np.array(predictions, dtype=bool)

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.base.storage_bits() + sum(
            table.storage_bits() for table in self.tables
        )
