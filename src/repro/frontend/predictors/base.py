"""Common branch predictor interface and shared helpers."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class BranchPredictor(abc.ABC):
    """Interface of a conditional branch direction predictor.

    The driver calls :meth:`predict` with the branch address, compares
    the prediction with the actual outcome, and then calls
    :meth:`update` with that outcome so the predictor can train -- the
    same protocol a pintool implementing the structure follows.

    :meth:`simulate_sequence` is the batch entry point the columnar
    simulator uses: it runs predict-then-train over a whole branch
    stream and returns the predictions.  The base implementation is a
    tight scalar loop over :meth:`predict`/:meth:`update`; subclasses
    override it with inlined (or, for stateless predictors, fully
    vectorized) versions that produce bit-identical predictions.
    """

    #: Short name used in figure legends (e.g. ``"gshare"``).
    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, address: int) -> bool:
        """Predict whether the branch at ``address`` is taken."""

    @abc.abstractmethod
    def update(self, address: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predict and train over a branch stream; returns predictions.

        ``targets`` carries the resolved taken-targets (-1 when
        unknown); only static direction heuristics (BTFN) consult it.
        """
        predictions = []
        append = predictions.append
        predict = self.predict
        update = self.update
        for address, outcome in zip(addresses.tolist(), taken.tolist()):
            append(predict(address))
            update(address, outcome)
        return np.array(predictions, dtype=bool)

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total number of storage bits the hardware structure needs."""

    def storage_bytes(self) -> float:
        """Storage cost in bytes."""
        return self.storage_bits() / 8.0

    def storage_kb(self) -> float:
        """Storage cost in kilobytes."""
        return self.storage_bits() / 8192.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(bits={self.storage_bits()})"


class SaturatingCounter:
    """Helpers for n-bit saturating counters stored as plain integers."""

    @staticmethod
    def taken(value: int, bits: int = 2) -> bool:
        """Whether a counter value predicts taken."""
        return value >= (1 << (bits - 1))

    @staticmethod
    def update(value: int, taken: bool, bits: int = 2) -> int:
        """Increment or decrement a counter with saturation."""
        if taken:
            return min(value + 1, (1 << bits) - 1)
        return max(value - 1, 0)


def index_bits(entries: int) -> int:
    """Number of index bits needed for ``entries`` table slots."""
    if entries <= 0 or entries & (entries - 1):
        raise ValueError("table sizes must be positive powers of two")
    return entries.bit_length() - 1
