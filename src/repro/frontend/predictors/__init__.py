"""Branch direction predictors evaluated in the paper (Section IV-A)."""

from repro.frontend.predictors.base import BranchPredictor
from repro.frontend.predictors.bimodal import BimodalPredictor
from repro.frontend.predictors.gshare import GsharePredictor
from repro.frontend.predictors.tournament import TournamentPredictor
from repro.frontend.predictors.tage import TagePredictor
from repro.frontend.predictors.loop import LoopPredictor
from repro.frontend.predictors.hybrid import PredictorWithLoop
from repro.frontend.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
)
from repro.frontend.predictors.factory import (
    PREDICTOR_BUDGETS,
    make_predictor,
    predictor_configurations,
)

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "TournamentPredictor",
    "TagePredictor",
    "LoopPredictor",
    "PredictorWithLoop",
    "AlwaysTakenPredictor",
    "AlwaysNotTakenPredictor",
    "BackwardTakenPredictor",
    "make_predictor",
    "predictor_configurations",
    "PREDICTOR_BUDGETS",
]
