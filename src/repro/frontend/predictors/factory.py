"""Predictor construction helpers matching the paper's Table II budgets.

The paper evaluates three predictor families (gshare, tournament, TAGE)
at two hardware budgets (~2KB "small" and ~16KB "big"), optionally
augmented with a 64-entry (~512B) loop predictor.  ``make_predictor``
builds any of those nine configurations by name.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.frontend.predictors.base import BranchPredictor
from repro.frontend.predictors.gshare import GsharePredictor
from repro.frontend.predictors.hybrid import PredictorWithLoop
from repro.frontend.predictors.loop import LoopPredictor
from repro.frontend.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
)
from repro.frontend.predictors.tage import TagePredictor
from repro.frontend.predictors.tournament import TournamentPredictor

#: Predictor families evaluated in Figure 5.
PREDICTOR_KINDS = ("gshare", "tournament", "tage")

#: Stateless heuristics (budget-independent, fully vectorized batch path).
STATIC_PREDICTOR_KINDS = ("always-taken", "always-not-taken", "btfn")

_STATIC_PREDICTORS = {
    "always-taken": AlwaysTakenPredictor,
    "always-not-taken": AlwaysNotTakenPredictor,
    "btfn": BackwardTakenPredictor,
}

#: Budget labels used throughout the paper.
PREDICTOR_BUDGETS = ("small", "big")

#: Table II size parameters per (kind, budget).
SIZE_PARAMETERS: Dict[Tuple[str, str], Dict[str, int]] = {
    ("gshare", "small"): {"history_bits": 13},
    ("gshare", "big"): {"history_bits": 16},
    ("tournament", "small"): {"local_index_bits": 10, "history_bits": 8},
    ("tournament", "big"): {"local_index_bits": 12, "history_bits": 14},
    ("tage", "small"): {
        "num_tables": 2,
        "entries_per_table": 256,
        "tag_bits": 9,
        "min_history": 4,
        "max_history": 16,
        "base_entries": 4096,
    },
    ("tage", "big"): {
        "num_tables": 12,
        "entries_per_table": 512,
        "tag_bits": 10,
        "min_history": 4,
        "max_history": 300,
        "base_entries": 8192,
    },
}


def make_predictor(kind: str, budget: str = "small", with_loop: bool = False) -> BranchPredictor:
    """Build a predictor configuration by family, budget, and loop option.

    Parameters
    ----------
    kind:
        One of ``"gshare"``, ``"tournament"``, ``"tage"``.
    budget:
        ``"small"`` (~2KB) or ``"big"`` (~16KB), as in Table II.
    with_loop:
        Add the 64-entry loop branch predictor on top of the base
        predictor (the paper evaluates this only for small budgets, but
        any combination is allowed here).
    """
    kind = kind.lower()
    budget = budget.lower()
    if kind in _STATIC_PREDICTORS:
        predictor = _STATIC_PREDICTORS[kind]()
        if with_loop:
            predictor = PredictorWithLoop(predictor, LoopPredictor())
        return predictor
    if kind not in PREDICTOR_KINDS:
        raise ValueError(
            f"unknown predictor kind {kind!r}; expected one of "
            f"{PREDICTOR_KINDS + STATIC_PREDICTOR_KINDS}"
        )
    if budget not in PREDICTOR_BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; expected one of {PREDICTOR_BUDGETS}")

    parameters = SIZE_PARAMETERS[(kind, budget)]
    if kind == "gshare":
        predictor: BranchPredictor = GsharePredictor(**parameters)
    elif kind == "tournament":
        predictor = TournamentPredictor(**parameters)
    else:
        predictor = TagePredictor(**parameters)

    if with_loop:
        predictor = PredictorWithLoop(predictor, LoopPredictor())
    return predictor


def predictor_configurations() -> List[Tuple[str, str, str, bool]]:
    """The nine Figure 5 configurations as (label, kind, budget, with_loop).

    The order matches the paper's legend: the three big predictors, the
    three small predictors, and the three small predictors with a loop
    predictor added.
    """
    configurations: List[Tuple[str, str, str, bool]] = []
    for kind in PREDICTOR_KINDS:
        configurations.append((f"{kind}-big", kind, "big", False))
    for kind in PREDICTOR_KINDS:
        configurations.append((f"{kind}-small", kind, "small", False))
    for kind in PREDICTOR_KINDS:
        configurations.append((f"L-{kind}-small", kind, "small", True))
    return configurations
