"""Bimodal (per-address two-bit counter) predictor.

The simplest direction predictor: a table of two-bit saturating
counters indexed by the low bits of the branch address.  It is both a
baseline in its own right and the base component of the TAGE predictor.
"""

from __future__ import annotations

from repro.frontend.predictors.base import BranchPredictor, SaturatingCounter


class BimodalPredictor(BranchPredictor):
    """Table of two-bit saturating counters indexed by branch address."""

    name = "bimodal"

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if counter_bits < 1:
            raise ValueError("counter_bits must be at least 1")
        self.entries = entries
        self.counter_bits = counter_bits
        initial = 1 << (counter_bits - 1)  # weakly taken
        self._table = [initial] * entries

    def _index(self, address: int) -> int:
        return (address >> 2) & (self.entries - 1)

    def predict(self, address: int) -> bool:
        value = self._table[self._index(address)]
        return SaturatingCounter.taken(value, self.counter_bits)

    def update(self, address: int, taken: bool) -> None:
        index = self._index(address)
        self._table[index] = SaturatingCounter.update(
            self._table[index], taken, self.counter_bits
        )

    def storage_bits(self) -> int:
        return self.entries * self.counter_bits
