"""Bimodal (per-address two-bit counter) predictor.

The simplest direction predictor: a table of two-bit saturating
counters indexed by the low bits of the branch address.  It is both a
baseline in its own right and the base component of the TAGE predictor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontend.predictors.base import BranchPredictor, SaturatingCounter


class BimodalPredictor(BranchPredictor):
    """Table of two-bit saturating counters indexed by branch address."""

    name = "bimodal"

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if counter_bits < 1:
            raise ValueError("counter_bits must be at least 1")
        self.entries = entries
        self.counter_bits = counter_bits
        initial = 1 << (counter_bits - 1)  # weakly taken
        self._table = [initial] * entries

    def _index(self, address: int) -> int:
        return (address >> 2) & (self.entries - 1)

    def predict(self, address: int) -> bool:
        value = self._table[self._index(address)]
        return SaturatingCounter.taken(value, self.counter_bits)

    def update(self, address: int, taken: bool) -> None:
        index = self._index(address)
        self._table[index] = SaturatingCounter.update(
            self._table[index], taken, self.counter_bits
        )

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batch mode: the predict/update automaton inlined per entry.

        Events are grouped by table entry (each entry's counter evolves
        independently), so the per-event work is a handful of local
        operations with no function calls.
        """
        count = int(addresses.shape[0])
        if count == 0:
            return np.zeros(0, dtype=bool)
        indices = (addresses >> 2) & (self.entries - 1)
        order = np.argsort(indices, kind="stable")
        sorted_indices = indices[order]
        boundaries = np.flatnonzero(sorted_indices[1:] != sorted_indices[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [count]))

        predictions = np.empty(count, dtype=bool)
        table = self._table
        threshold = 1 << (self.counter_bits - 1)
        ceiling = (1 << self.counter_bits) - 1
        for start, end in zip(starts.tolist(), ends.tolist()):
            positions = order[start:end]
            entry = int(sorted_indices[start])
            value = table[entry]
            group_predictions = []
            append = group_predictions.append
            for outcome in taken[positions].tolist():
                append(value >= threshold)
                if outcome:
                    if value < ceiling:
                        value += 1
                elif value > 0:
                    value -= 1
            table[entry] = value
            predictions[positions] = group_predictions
        return predictions

    def storage_bits(self) -> int:
        return self.entries * self.counter_bits
