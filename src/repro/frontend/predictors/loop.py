"""Loop branch predictor (LBP).

Identifies branches that behave like loop latches with a constant trip
count (taken N-1 times, then not taken once) and, once confident,
predicts the loop exit exactly.  The paper evaluates a 64-entry LBP
with an approximate hardware budget of 512 bytes, used as a side
predictor next to a small base predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.predictors.base import BranchPredictor


@dataclass
class _LoopEntry:
    """State tracked for one (potential) loop branch."""

    tag: int
    trip_count: int = 0
    current_count: int = 0
    confidence: int = 0
    age: int = 0


class LoopPredictor(BranchPredictor):
    """Direct-mapped table of loop trip-count trackers."""

    name = "loop"

    #: Confidence threshold above which the loop prediction overrides
    #: the base predictor.  The branch must complete this many
    #: consecutive loop executions with the same trip count, which keeps
    #: loops with slightly varying trip counts from triggering wrong
    #: overrides.
    CONFIDENCE_THRESHOLD = 7

    #: Minimum learned trip count for a branch to be treated as a loop
    #: latch.  Mostly-not-taken conditionals look like "trip 1 loops"
    #: and are better left to the base predictor.
    MIN_TRIP_COUNT = 2

    def __init__(
        self,
        entries: int = 64,
        tag_bits: int = 14,
        counter_bits: int = 14,
        confidence_bits: int = 3,
    ) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.counter_bits = counter_bits
        self.confidence_bits = confidence_bits
        self._table: list = [None] * entries
        self._max_count = (1 << counter_bits) - 1
        self._max_confidence = (1 << confidence_bits) - 1

    def _slot_and_tag(self, address: int) -> tuple:
        pc = address >> 2
        slot = pc & (self.entries - 1)
        tag = (pc >> (self.entries.bit_length() - 1)) & ((1 << self.tag_bits) - 1)
        return slot, tag

    def _entry(self, address: int) -> Optional[_LoopEntry]:
        slot, tag = self._slot_and_tag(address)
        entry = self._table[slot]
        if entry is not None and entry.tag == tag:
            return entry
        return None

    def is_confident(self, address: int) -> bool:
        """Whether the loop predictor should override the base predictor."""
        entry = self._entry(address)
        return (
            entry is not None
            and entry.trip_count >= self.MIN_TRIP_COUNT
            and entry.confidence >= self.CONFIDENCE_THRESHOLD
        )

    def predict(self, address: int) -> bool:
        entry = self._entry(address)
        if entry is None or entry.trip_count == 0:
            return True
        # Predict "keep looping" except on the learned final iteration.
        return entry.current_count + 1 < entry.trip_count

    def update(self, address: int, taken: bool) -> None:
        slot, tag = self._slot_and_tag(address)
        entry = self._table[slot]
        if entry is None or entry.tag != tag:
            # Allocate: start tracking this branch as a potential loop.
            if entry is not None and entry.confidence >= self.CONFIDENCE_THRESHOLD:
                # Keep confident residents; age them instead of evicting
                # immediately so useful loops are not thrashed.
                entry.age += 1
                if entry.age < 4:
                    return
            self._table[slot] = _LoopEntry(
                tag=tag, current_count=1 if taken else 0
            )
            return

        entry.age = 0
        if taken:
            entry.current_count = min(entry.current_count + 1, self._max_count)
            return
        # A not-taken outcome closes one loop execution.
        iterations = entry.current_count + 1
        if entry.trip_count == iterations:
            entry.confidence = min(entry.confidence + 1, self._max_confidence)
        else:
            entry.trip_count = iterations
            entry.confidence = 0
        entry.current_count = 0

    def simulate_overrides(self, addresses, taken):
        """Batch pass: per-branch (override?, loop prediction) lists.

        Runs ``is_confident``/``predict``/``update`` inlined over the
        whole stream with the table held in locals; state transitions
        are identical to the scalar methods.
        """
        table = self._table
        entries_mask = self.entries - 1
        tag_shift = self.entries.bit_length() - 1
        tag_mask = (1 << self.tag_bits) - 1
        max_count = self._max_count
        max_confidence = self._max_confidence
        threshold = self.CONFIDENCE_THRESHOLD
        min_trip = self.MIN_TRIP_COUNT
        overrides = []
        predictions = []
        override_append = overrides.append
        prediction_append = predictions.append
        for address, outcome in zip(addresses.tolist(), taken.tolist()):
            pc = address >> 2
            slot = pc & entries_mask
            tag = (pc >> tag_shift) & tag_mask
            entry = table[slot]
            matched = entry is not None and entry.tag == tag
            if (
                matched
                and entry.trip_count >= min_trip
                and entry.confidence >= threshold
            ):
                override_append(True)
                prediction_append(entry.current_count + 1 < entry.trip_count)
            else:
                override_append(False)
                prediction_append(False)

            if not matched:
                if entry is not None and entry.confidence >= threshold:
                    entry.age += 1
                    if entry.age < 4:
                        continue
                table[slot] = _LoopEntry(tag=tag, current_count=1 if outcome else 0)
                continue
            entry.age = 0
            if outcome:
                if entry.current_count < max_count:
                    entry.current_count += 1
                continue
            iterations = entry.current_count + 1
            if entry.trip_count == iterations:
                if entry.confidence < max_confidence:
                    entry.confidence += 1
            else:
                entry.trip_count = iterations
                entry.confidence = 0
            entry.current_count = 0
        return overrides, predictions

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + 2 * self.counter_bits + self.confidence_bits + 4
        return self.entries * per_entry
