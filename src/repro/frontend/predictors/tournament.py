"""Alpha 21264 style tournament predictor.

Two component predictors -- one driven by per-branch local history and
one driven by global history -- plus a choice predictor that learns
which component to trust for each branch.  Table II sizes it as
``2^n (m + 2) + 2^(m + 2)`` bits with ``n = 10, m = 8`` (small, ~2KB)
and ``n = 12, m = 14`` (big, ~16KB).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontend.predictors.base import BranchPredictor, SaturatingCounter


class TournamentPredictor(BranchPredictor):
    """Hybrid local/global predictor with a per-branch choice table."""

    name = "tournament"

    def __init__(self, local_index_bits: int = 10, history_bits: int = 8) -> None:
        if local_index_bits < 1 or history_bits < 1:
            raise ValueError("index and history widths must be at least 1")
        self.local_index_bits = local_index_bits
        self.history_bits = history_bits

        self.local_history_entries = 1 << local_index_bits
        self.prediction_entries = 1 << history_bits

        self._local_history = [0] * self.local_history_entries
        self._local_counters = [2] * self.prediction_entries
        self._global_counters = [2] * self.prediction_entries
        # Choice counter per local-history entry; >=2 means trust global.
        self._choice = [2] * self.local_history_entries
        self._global_history = 0

        self._local_mask = self.local_history_entries - 1
        self._prediction_mask = self.prediction_entries - 1

    def _local_slot(self, address: int) -> int:
        return (address >> 2) & self._local_mask

    def _components(self, address: int):
        slot = self._local_slot(address)
        local_index = self._local_history[slot] & self._prediction_mask
        global_index = self._global_history & self._prediction_mask
        local_taken = SaturatingCounter.taken(self._local_counters[local_index])
        global_taken = SaturatingCounter.taken(self._global_counters[global_index])
        return slot, local_index, global_index, local_taken, global_taken

    def predict(self, address: int) -> bool:
        slot, _, _, local_taken, global_taken = self._components(address)
        use_global = self._choice[slot] >= 2
        return global_taken if use_global else local_taken

    def update(self, address: int, taken: bool) -> None:
        slot, local_index, global_index, local_taken, global_taken = self._components(
            address
        )
        # Train the choice predictor only when the components disagree.
        if local_taken != global_taken:
            self._choice[slot] = SaturatingCounter.update(
                self._choice[slot], global_taken == taken
            )
        self._local_counters[local_index] = SaturatingCounter.update(
            self._local_counters[local_index], taken
        )
        self._global_counters[global_index] = SaturatingCounter.update(
            self._global_counters[global_index], taken
        )
        self._local_history[slot] = (
            (self._local_history[slot] << 1) | int(taken)
        ) & self._prediction_mask
        self._global_history = (
            (self._global_history << 1) | int(taken)
        ) & self._prediction_mask

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Both component lookups and all four trainings inlined."""
        predictions = []
        append = predictions.append
        local_history = self._local_history
        local_counters = self._local_counters
        global_counters = self._global_counters
        choice = self._choice
        local_mask = self._local_mask
        prediction_mask = self._prediction_mask
        global_history = self._global_history
        for address, outcome in zip(addresses.tolist(), taken.tolist()):
            slot = (address >> 2) & local_mask
            local_index = local_history[slot] & prediction_mask
            global_index = global_history & prediction_mask
            local_taken = local_counters[local_index] >= 2
            global_taken = global_counters[global_index] >= 2
            append(global_taken if choice[slot] >= 2 else local_taken)

            if local_taken != global_taken:
                value = choice[slot]
                if global_taken == outcome:
                    if value < 3:
                        choice[slot] = value + 1
                elif value > 0:
                    choice[slot] = value - 1
            if outcome:
                value = local_counters[local_index]
                if value < 3:
                    local_counters[local_index] = value + 1
                value = global_counters[global_index]
                if value < 3:
                    global_counters[global_index] = value + 1
                local_history[slot] = ((local_history[slot] << 1) | 1) & prediction_mask
                global_history = ((global_history << 1) | 1) & prediction_mask
            else:
                value = local_counters[local_index]
                if value > 0:
                    local_counters[local_index] = value - 1
                value = global_counters[global_index]
                if value > 0:
                    global_counters[global_index] = value - 1
                local_history[slot] = (local_history[slot] << 1) & prediction_mask
                global_history = (global_history << 1) & prediction_mask
        self._global_history = global_history
        return np.array(predictions, dtype=bool)

    def storage_bits(self) -> int:
        # Local histories (m bits each) + choice (2 bits each) for 2^n
        # entries, plus two banks of 2-bit counters with 2^m entries.
        per_branch = self.local_history_entries * (self.history_bits + 2)
        counters = 2 * (self.prediction_entries * 2)
        return per_branch + counters
