"""Base predictor augmented with a loop branch predictor.

The paper's proposal for HPC-tailored cores: a small base predictor
(gshare, tournament, or TAGE) whose prediction is overridden by a
64-entry loop predictor whenever the loop predictor has high confidence
in the branch being a constant-trip-count loop latch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontend.predictors.base import BranchPredictor
from repro.frontend.predictors.loop import LoopPredictor


class PredictorWithLoop(BranchPredictor):
    """Hybrid of a base direction predictor and a loop predictor."""

    def __init__(self, base: BranchPredictor, loop: Optional[LoopPredictor] = None) -> None:
        self.base = base
        self.loop = loop if loop is not None else LoopPredictor()
        self.name = f"L-{base.name}"

    def predict(self, address: int) -> bool:
        if self.loop.is_confident(address):
            return self.loop.predict(address)
        return self.base.predict(address)

    def update(self, address: int, taken: bool) -> None:
        self.base.update(address, taken)
        self.loop.update(address, taken)

    def simulate_sequence(
        self,
        addresses: np.ndarray,
        taken: np.ndarray,
        targets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the two components as independent batch passes.

        The loop predictor's state never depends on the base predictor
        (and vice versa) -- both train on the raw outcome stream -- so
        the interleaved scalar protocol decomposes into one pass per
        component combined with a vectorized select.
        """
        overrides, loop_predictions = self.loop.simulate_overrides(addresses, taken)
        base_predictions = self.base.simulate_sequence(addresses, taken, targets)
        return np.where(
            np.array(overrides, dtype=bool),
            np.array(loop_predictions, dtype=bool),
            base_predictions,
        )

    def storage_bits(self) -> int:
        return self.base.storage_bits() + self.loop.storage_bits()
