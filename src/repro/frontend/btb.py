"""Branch target buffer (Section IV-B).

A set-associative cache of taken-branch target addresses, indexed by
the branch instruction address (simple modulo indexing, as in the
paper).  Only branches predicted/observed taken are inserted; a miss is
counted whenever a taken branch looks up the BTB and its entry (with
the correct target) is absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend.predictors.base import index_bits


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, entries: int = 2048, associativity: int = 4, tag_bits: int = 20, target_bits: int = 32) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if associativity <= 0 or entries % associativity:
            raise ValueError("associativity must divide the entry count")
        self.entries = entries
        self.associativity = associativity
        self.tag_bits = tag_bits
        self.target_bits = target_bits
        self.sets = entries // associativity
        # Each set maps tag -> target, with insertion order giving LRU.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.sets)]
        self.lookups = 0
        self.misses = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        pc = address >> 2
        set_index = pc & (self.sets - 1) if self.sets > 1 else 0
        tag = pc >> max(0, index_bits(self.sets)) if self.sets > 1 else pc
        return set_index, tag

    def lookup(self, address: int) -> Optional[int]:
        """Return the stored target for a branch, or None on a miss."""
        self.lookups += 1
        set_index, tag = self._locate(address)
        entry_set = self._sets[set_index]
        target = entry_set.get(tag)
        if target is None:
            self.misses += 1
            return None
        # Refresh LRU position.
        del entry_set[tag]
        entry_set[tag] = target
        return target

    def insert(self, address: int, target: int) -> None:
        """Insert or update the target of a taken branch."""
        set_index, tag = self._locate(address)
        entry_set = self._sets[set_index]
        if tag in entry_set:
            del entry_set[tag]
        elif len(entry_set) >= self.associativity:
            oldest = next(iter(entry_set))
            del entry_set[oldest]
        entry_set[tag] = target

    def access(self, address: int, target: int) -> bool:
        """Look up a taken branch and install it on a miss.

        Returns True on a hit with the correct target.
        """
        stored = self.lookup(address)
        hit = stored is not None and stored == target
        if not hit:
            self.insert(address, target)
        return hit

    def access_sequence(self, addresses, targets) -> int:
        """Batch :meth:`access` over a taken-branch stream; returns misses.

        A tight loop over plain ints with the set dictionaries held in
        locals; lookup/miss counters and replacement state evolve
        exactly as under per-call :meth:`access`.
        """
        sets = self._sets
        num_sets = self.sets
        associativity_limit = self.associativity
        set_mask = num_sets - 1
        tag_shift = index_bits(num_sets) if num_sets > 1 else 0
        multi_set = num_sets > 1
        lookups = 0
        lookup_misses = 0
        misses = 0
        for address, target in zip(addresses.tolist(), targets.tolist()):
            pc = address >> 2
            if multi_set:
                entry_set = sets[pc & set_mask]
                tag = pc >> tag_shift
            else:
                entry_set = sets[0]
                tag = pc
            lookups += 1
            stored = entry_set.get(tag)
            if stored is None:
                lookup_misses += 1
                misses += 1
                if len(entry_set) >= associativity_limit:
                    del entry_set[next(iter(entry_set))]
                entry_set[tag] = target
            else:
                # Refresh LRU position (and the target, when it changed).
                del entry_set[tag]
                entry_set[tag] = target
                if stored != target:
                    misses += 1
        self.lookups += lookups
        self.misses += lookup_misses
        return misses

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed."""
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    def storage_bits(self) -> int:
        """Approximate storage cost (tag + target per entry)."""
        return self.entries * (self.tag_bits + self.target_bits)

    def reset_statistics(self) -> None:
        """Clear the lookup/miss counters (contents are kept)."""
        self.lookups = 0
        self.misses = 0
