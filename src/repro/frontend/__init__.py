"""Core front-end hardware structure simulators.

This subpackage models the three structures the paper proposes to
rebalance:

* branch predictors (:mod:`repro.frontend.predictors`): gshare,
  tournament (Alpha 21264 style), TAGE, a loop branch predictor, and a
  hybrid that augments any base predictor with the loop predictor,
* the branch target buffer (:mod:`repro.frontend.btb`), and
* the instruction cache (:mod:`repro.frontend.icache`).

:mod:`repro.frontend.simulation` drives a dynamic trace through these
structures and reports MPKI exactly as the paper's
microarchitecture-dependent pintools do (Section IV).
:mod:`repro.frontend.configs` defines the baseline and tailored
front-end configurations evaluated in Section V.
"""

from repro.frontend.predictors import (
    BimodalPredictor,
    BranchPredictor,
    GsharePredictor,
    LoopPredictor,
    PredictorWithLoop,
    TagePredictor,
    TournamentPredictor,
    make_predictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.icache import InstructionCache
from repro.frontend.configs import (
    BASELINE_FRONTEND,
    TAILORED_FRONTEND,
    BranchPredictorConfig,
    BTBConfig,
    FrontEndConfig,
    ICacheConfig,
)
from repro.frontend.simulation import (
    BranchPredictionResult,
    BTBResult,
    ICacheResult,
    FrontEndResult,
    simulate_branch_predictor,
    simulate_btb,
    simulate_icache,
)

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "TournamentPredictor",
    "TagePredictor",
    "LoopPredictor",
    "PredictorWithLoop",
    "make_predictor",
    "BranchTargetBuffer",
    "InstructionCache",
    "FrontEndConfig",
    "ICacheConfig",
    "BTBConfig",
    "BranchPredictorConfig",
    "BASELINE_FRONTEND",
    "TAILORED_FRONTEND",
    "BranchPredictionResult",
    "BTBResult",
    "ICacheResult",
    "FrontEndResult",
    "simulate_branch_predictor",
    "simulate_btb",
    "simulate_icache",
]
