"""Instruction cache simulator (Section IV-C).

A set-associative cache with LRU replacement.  Fetch follows the
paper's model: once a line is fetched, instructions are extracted
sequentially until the end of the line or a taken branch, so the cache
is accessed once per line that a dynamic basic block touches.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.frontend.predictors.base import index_bits


class InstructionCache:
    """Set-associative instruction cache with LRU replacement."""

    def __init__(self, size_bytes: int = 32 * 1024, line_bytes: int = 64, associativity: int = 4) -> None:
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if size_bytes % (line_bytes * associativity):
            raise ValueError("size must be a multiple of line_bytes * associativity")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_lines = size_bytes // line_bytes
        self.num_sets = self.num_lines // associativity
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def _set_index(self, line_address: int) -> int:
        if self.num_sets == 1:
            return 0
        return line_address & (self.num_sets - 1)

    def access_line(self, line_address: int) -> bool:
        """Access one cache line (by line-granular address); True on hit."""
        self.accesses += 1
        set_index = self._set_index(line_address)
        tag = line_address >> max(0, index_bits(self.num_sets))
        entry_set = self._sets[set_index]
        if tag in entry_set:
            del entry_set[tag]
            entry_set[tag] = None
            return True
        self.misses += 1
        if len(entry_set) >= self.associativity:
            oldest = next(iter(entry_set))
            del entry_set[oldest]
        entry_set[tag] = None
        return False

    def fetch_range(self, start_address: int, size_bytes: int) -> int:
        """Fetch a sequential byte range; returns the number of misses."""
        if size_bytes <= 0:
            return 0
        first_line = start_address // self.line_bytes
        last_line = (start_address + size_bytes - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            if not self.access_line(line):
                misses += 1
        return misses

    def fetch_ranges(self, start_addresses, sizes) -> int:
        """Batch :meth:`fetch_range` over byte ranges; returns misses.

        The ranges are expanded into the cache lines they touch with
        one vectorized pass; consecutive accesses to the same line are
        guaranteed hits (the line is already most-recently-used), so
        they are run-length compressed away and only line *changes*
        walk the LRU state, in a tight loop with the set dictionaries
        held in locals.  Counters and replacement state evolve exactly
        as under per-range :meth:`fetch_range`.
        """
        line_shift = index_bits(self.line_bytes)
        first_lines = start_addresses >> line_shift
        last_lines = (start_addresses + sizes - 1) >> line_shift
        lines_per_range = last_lines - first_lines + 1
        total_accesses = int(lines_per_range.sum())
        if total_accesses == 0:
            return 0
        repeated_firsts = np.repeat(first_lines, lines_per_range)
        run_starts = np.cumsum(lines_per_range) - lines_per_range
        offsets = np.arange(total_accesses, dtype=np.int64) - np.repeat(
            run_starts, lines_per_range
        )
        lines = repeated_firsts + offsets
        changed = np.empty(total_accesses, dtype=bool)
        changed[0] = True
        np.not_equal(lines[1:], lines[:-1], out=changed[1:])
        distinct_lines = lines[changed]

        sets = self._sets
        num_sets = self.num_sets
        associativity_limit = self.associativity
        set_mask = num_sets - 1
        tag_shift = max(0, index_bits(num_sets))
        multi_set = num_sets > 1
        misses = 0
        for line in distinct_lines.tolist():
            entry_set = sets[line & set_mask] if multi_set else sets[0]
            tag = line >> tag_shift
            if tag in entry_set:
                del entry_set[tag]
                entry_set[tag] = None
            else:
                misses += 1
                if len(entry_set) >= associativity_limit:
                    del entry_set[next(iter(entry_set))]
                entry_set[tag] = None
        self.accesses += total_accesses
        self.misses += misses
        return misses

    @property
    def miss_rate(self) -> float:
        """Fraction of line accesses that missed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def storage_bits(self) -> int:
        """Approximate storage: data plus tag array."""
        tag_bits = 32 - index_bits(self.line_bytes) - index_bits(self.num_sets)
        return self.num_lines * (self.line_bytes * 8 + tag_bits + 1)

    def reset_statistics(self) -> None:
        """Clear access/miss counters (contents are kept)."""
        self.accesses = 0
        self.misses = 0
