"""Front-end configurations evaluated in Section V.

The *baseline* lean core uses the front-end found in today's lean-core
CMPs (32KB/64B-line I-cache, 16KB tournament predictor, 2K-entry BTB);
the *tailored* core applies the paper's recommendations (16KB/128B-line
I-cache, 2KB tournament predictor plus a loop predictor, 256-entry
BTB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.icache import InstructionCache
from repro.frontend.predictors import BranchPredictor, make_predictor


@dataclass(frozen=True)
class ICacheConfig:
    """Geometry of an instruction cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 4

    @property
    def size_kb(self) -> float:
        """Capacity in KB."""
        return self.size_bytes / 1024.0

    def build(self) -> InstructionCache:
        """Instantiate the simulator for this geometry."""
        return InstructionCache(self.size_bytes, self.line_bytes, self.associativity)

    @property
    def label(self) -> str:
        """Readable description, e.g. ``"32KB, 64B-line, 4-way"``."""
        return f"{self.size_bytes // 1024}KB, {self.line_bytes}B-line, {self.associativity}-way"


@dataclass(frozen=True)
class BTBConfig:
    """Geometry of a branch target buffer."""

    entries: int = 2048
    associativity: int = 4

    def build(self) -> BranchTargetBuffer:
        """Instantiate the simulator for this geometry."""
        return BranchTargetBuffer(self.entries, self.associativity)

    @property
    def label(self) -> str:
        """Readable description, e.g. ``"2048-entry, 4-way"``."""
        return f"{self.entries}-entry, {self.associativity}-way"


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Branch predictor family, budget, and loop-predictor option."""

    kind: str = "tournament"
    budget: str = "big"
    with_loop: bool = False

    def build(self) -> BranchPredictor:
        """Instantiate the predictor."""
        return make_predictor(self.kind, self.budget, self.with_loop)

    @property
    def label(self) -> str:
        """Readable description, e.g. ``"L-tournament-small"``."""
        prefix = "L-" if self.with_loop else ""
        return f"{prefix}{self.kind}-{self.budget}"


@dataclass(frozen=True)
class FrontEndConfig:
    """Complete front-end configuration of one core flavour."""

    name: str
    icache: ICacheConfig = field(default_factory=ICacheConfig)
    predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    btb: BTBConfig = field(default_factory=BTBConfig)

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: I-cache {self.icache.label}; "
            f"BP {self.predictor.label}; BTB {self.btb.label}"
        )


#: The baseline lean core front-end of Section V.
BASELINE_FRONTEND = FrontEndConfig(
    name="baseline",
    icache=ICacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=4),
    predictor=BranchPredictorConfig(kind="tournament", budget="big", with_loop=False),
    btb=BTBConfig(entries=2048, associativity=4),
)

#: The HPC-tailored lean core front-end proposed by the paper.
TAILORED_FRONTEND = FrontEndConfig(
    name="tailored",
    icache=ICacheConfig(size_bytes=16 * 1024, line_bytes=128, associativity=8),
    predictor=BranchPredictorConfig(kind="tournament", budget="small", with_loop=True),
    btb=BTBConfig(entries=256, associativity=4),
)
