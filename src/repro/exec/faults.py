"""Deterministic fault injection for the execution layer.

A :class:`FaultPlan` is a list of :class:`Fault` entries, each pinned
to an exact ``(item index, attempt)`` site, so a test (or a chaos run)
states *precisely* which item dies, raises, hangs, or has a cache file
truncated underneath it -- no probabilities, no flakiness.  Plans are
activated through :class:`~repro.api.runtime_config.RuntimeConfig`
(``fault_plan=...`` / ``REPRO_FAULT_PLAN``) as either an inline JSON
document or a path to one, and the supervised executors hand the
serialized plan to every worker process at spawn, so injection works
identically on fork and spawn platforms.

Fault kinds:

``kill``
    The worker process exits hard (``os._exit``), exactly like a
    crash or an OOM kill.  In-process (serial) execution raises
    :class:`SimulatedWorkerDeath` instead, so a test process is never
    taken down by its own fault plan.
``raise``
    A transient exception (:class:`InjectedFault`) -- the retry path.
``hang``
    The worker sleeps ``seconds`` -- the per-item timeout path.
``truncate``
    The first (sorted) file matching ``target`` under the active trace
    cache or result store directory is cut in half -- the
    corrupt-entry quarantine path.

Queue-specific kinds, interpreted by the durable work-queue machinery
of :mod:`repro.exec.queue` (and ignored by :meth:`FaultPlan.fire`,
which only handles the generic worker-side kinds above):

``stale-lease``
    The claiming worker backdates its own lease to the epoch and dies
    hard -- the dead-worker-on-another-machine path the reaper must
    reclaim.
``double-claim``
    The claiming worker deletes its own lease mid-item (as if it had
    been reclaimed), sleeps ``seconds`` so a sibling can re-claim and
    complete the item first, then publishes anyway -- the
    first-writer-wins compare-and-swap path.
``slow-heartbeat``
    The worker pauses heartbeat renewal and stalls the item for
    ``seconds`` -- long enough, with a short TTL, for the reaper to
    reclaim an item whose worker is merely slow, not dead.
"""

from __future__ import annotations

import fnmatch
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: The recognised fault kinds.
FAULT_KINDS = (
    "kill",
    "raise",
    "hang",
    "truncate",
    "stale-lease",
    "double-claim",
    "slow-heartbeat",
)

#: The kinds the queue machinery interprets itself (``FaultPlan.fire``
#: skips them: they need a lease and a heartbeat to act on).
QUEUE_FAULT_KINDS = ("stale-lease", "double-claim", "slow-heartbeat")

#: Exit code of an injected worker kill (visible in process tables).
KILL_EXIT_CODE = 87


class InjectedFault(RuntimeError):
    """The transient exception a ``raise`` fault throws."""


class SimulatedWorkerDeath(RuntimeError):
    """In-process stand-in for a ``kill`` fault.

    Serial execution cannot ``os._exit`` without taking the whole
    process (the test runner, the CLI) down with it; the serial
    executor treats this exception as a worker death instead.
    """


@dataclass(frozen=True)
class Fault:
    """One injection site: what happens at ``(index, attempt)``.

    ``attempt`` defaults to 1, so a fault fires on the item's first try
    only and a retry (or a resume) sails through -- the deterministic
    analogue of a transient failure.
    """

    kind: str
    index: int
    attempt: int = 1
    #: ``hang``: how long the worker sleeps.
    seconds: float = 60.0
    #: ``raise``: the exception message.
    message: str = "injected transient fault"
    #: ``truncate``: glob matched against files under the target dir.
    target: str = "*"
    #: ``truncate``: which cache directory to damage.
    store: str = "trace-cache"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.store not in ("trace-cache", "result-store"):
            raise ValueError(
                f"unknown fault store {self.store!r}; "
                "expected 'trace-cache' or 'result-store'"
            )

    def describe(self) -> Dict[str, Any]:
        """Plain-dict form (the JSON wire format)."""
        entry: Dict[str, Any] = {
            "kind": self.kind,
            "index": self.index,
            "attempt": self.attempt,
        }
        if self.kind in ("hang", "double-claim", "slow-heartbeat"):
            entry["seconds"] = self.seconds
        if self.kind == "raise":
            entry["message"] = self.message
        if self.kind == "truncate":
            entry["target"] = self.target
            entry["store"] = self.store
        return entry


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults, keyed by ``(index, attempt)``.

    Immutable and JSON-serializable, so one plan can be resolved in the
    supervisor, shipped to worker processes, and quoted verbatim in a
    failure report.
    """

    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        """Build a plan from fault entries."""
        return cls(faults=tuple(faults))

    @classmethod
    def from_json(cls, document: str) -> "FaultPlan":
        """Parse the JSON wire format (``{"faults": [...]}`` or a list)."""
        data = json.loads(document)
        if isinstance(data, dict):
            data = data.get("faults", [])
        if not isinstance(data, list):
            raise ValueError("fault plan JSON must be a list or {'faults': [...]}")
        return cls(faults=tuple(Fault(**entry) for entry in data))

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """Resolve a ``RuntimeConfig.fault_plan`` setting.

        ``None``/empty means no plan; a string starting with ``{`` or
        ``[`` is inline JSON; anything else is a path to a JSON file.
        """
        if spec is None:
            return None
        spec = spec.strip()
        if not spec:
            return None
        if spec.startswith("{") or spec.startswith("["):
            return cls.from_json(spec)
        with open(spec, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())

    def to_json(self) -> str:
        """Serialize to the JSON wire format (round-trips from_json)."""
        return json.dumps({"faults": [fault.describe() for fault in self.faults]})

    def at(self, index: int, attempt: int) -> List[Fault]:
        """The faults planted at one ``(index, attempt)`` site."""
        return [
            fault
            for fault in self.faults
            if fault.index == index and fault.attempt == attempt
        ]

    def fire(self, index: int, attempt: int, allow_exit: bool = True) -> None:
        """Trigger the faults planted at this site (worker side).

        ``allow_exit`` distinguishes real worker processes (which die
        via ``os._exit``) from in-process execution (which raises
        :class:`SimulatedWorkerDeath` so the host survives).  The
        queue-specific kinds (:data:`QUEUE_FAULT_KINDS`) are skipped
        here: they act on a lease and a heartbeat, which only the queue
        worker loop holds.
        """
        for fault in self.at(index, attempt):
            if fault.kind == "truncate":
                _truncate_target(fault)
            elif fault.kind == "hang":
                time.sleep(fault.seconds)
            elif fault.kind == "kill":
                if allow_exit:
                    os._exit(KILL_EXIT_CODE)
                raise SimulatedWorkerDeath(
                    f"injected worker kill at item {index} attempt {attempt}"
                )
            elif fault.kind == "raise":
                raise InjectedFault(
                    f"{fault.message} (item {index}, attempt {attempt})"
                )


def _truncate_target(fault: Fault) -> None:
    """Cut the first matching cache file in half (deterministically).

    Resolves the directory through the active runtime config, so the
    fault damages exactly the store the run is using.  Missing
    directory or no match is a no-op: the plan stays usable for runs
    whose caches have not materialized yet.
    """
    from repro.api import runtime_config

    if fault.store == "trace-cache":
        directory = runtime_config.current_trace_cache_dir()
    else:
        directory = runtime_config.current_result_cache_dir()
    if directory is None or not os.path.isdir(directory):
        return
    matches = sorted(
        name
        for name in os.listdir(directory)
        if fnmatch.fnmatch(name, fault.target)
        and os.path.isfile(os.path.join(directory, name))
    )
    if not matches:
        return
    path = os.path.join(directory, matches[0])
    size = os.path.getsize(path)
    with open(path, "r+b") as stream:
        stream.truncate(size // 2)


def plan_summary(plan: Optional[FaultPlan]) -> str:
    """One-line rendering for logs (``-`` when no plan is active)."""
    if plan is None or not plan.faults:
        return "-"
    return ", ".join(
        f"{fault.kind}@{fault.index}.{fault.attempt}" for fault in plan.faults
    )


def sites(plan: FaultPlan) -> Sequence[Tuple[int, int]]:
    """Every ``(index, attempt)`` site the plan touches, in plan order."""
    return [(fault.index, fault.attempt) for fault in plan.faults]
