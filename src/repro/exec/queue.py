"""Durable filesystem work queue: the distributed sweep backend.

A campaign is enqueued as one item file per work unit under a campaign
directory; any number of cooperating worker processes -- spawned by the
supervising :class:`QueueExecutor` or started externally on any machine
that mounts the queue directory (``repro-frontend worker --queue-dir``)
-- claim items with lease files, renew heartbeats while running, and
publish results with first-writer-wins compare-and-swap.  Everything is
plain files and atomic renames: no broker, no sockets, no locks a dead
worker could wedge.

On-disk layout of one campaign::

    <queue_dir>/campaign-<digest>/
        campaign.json            # worker ref, totals, execution knobs
        items/<name>.item        # one pending work unit (pickle)
        leases/<name>.lease      # the claim + heartbeat of one item
        done/<name>.result       # the published outcome (pickle)
        done/<name>.conflict*    # quarantined conflicting publications
        deaths/<name>            # append-only per-item failure ledger
        poison/<name>.json       # typed report of a quarantined item

Robustness properties, each deterministically testable through the
``stale-lease`` / ``double-claim`` / ``slow-heartbeat`` fault kinds of
:mod:`repro.exec.faults`:

* A worker SIGKILLed mid-item leaves a lease that stops heartbeating;
  the reaper (every worker and the supervisor run one) reclaims it and
  the item is retried -- instantly when the dead pid is local, after
  the lease TTL otherwise.
* Double completion (a reclaimed-but-alive worker finishing anyway) is
  resolved first-writer-wins: the loser's identical publication counts
  as a duplicate, a *different* one is quarantined as ``.conflict``
  evidence and counted, never silently clobbered.
* An item whose worker dies more often than the retry budget is moved
  to ``poison/`` with a typed report and published as a ``poison``
  result, so one bad item can never wedge a campaign.
* The campaign directory is content-addressed from the item keys, so a
  killed supervisor resumed from *any* process re-derives the same
  campaign, replays the published results, and re-runs only what is
  missing.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import pickle
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec import leases
from repro.exec.executors import (
    ExecutionSettings,
    Executor,
    RunOutcome,
    _notify,
    register_executor,
)
from repro.exec.faults import (
    QUEUE_FAULT_KINDS,
    FaultPlan,
    KILL_EXIT_CODE,
    SimulatedWorkerDeath,
)
from repro.exec.journal import item_key, quarantine_entry
from repro.exec.results import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISON,
    STATUS_REPLAYED,
    ItemResult,
    describe_exception,
)

#: How often the supervisor and idle workers rescan the queue.
QUEUE_POLL = 0.05

#: Campaign directory name prefix (content-addressed suffix).
CAMPAIGN_PREFIX = "campaign-"

#: File names inside one campaign directory.
CAMPAIGN_FILE = "campaign.json"
ITEMS_DIR = "items"
LEASES_DIR = "leases"
DONE_DIR = "done"
DEATHS_DIR = "deaths"
POISON_DIR = "poison"
ITEM_SUFFIX = ".item"
LEASE_SUFFIX = ".lease"
RESULT_SUFFIX = ".result"

_STATS = {
    "enqueued": 0,
    "replayed": 0,
    "completed": 0,
    "duplicates": 0,
    "conflicts": 0,
    "reclaims": 0,
    "errors": 0,
    "poisoned": 0,
}
_STATS_LOCK = threading.Lock()


def _count(counter: str, amount: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[counter] += amount


def queue_info() -> Dict[str, int]:
    """Process-wide queue counters (claims, reclaims, conflicts, ...)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_queue_info() -> None:
    """Zero the counters (tests)."""
    with _STATS_LOCK:
        for counter in _STATS:
            _STATS[counter] = 0


def worker_reference(worker: Callable) -> Optional[str]:
    """An importable ``module:qualname`` ref, or ``None`` (local only).

    External CLI workers resolve the campaign's worker by import; a
    worker that is not module-level (closure, lambda) can still be run
    by the supervisor's own spawned workers, which receive the callable
    directly.
    """
    module = getattr(worker, "__module__", None)
    qualname = getattr(worker, "__qualname__", "")
    if not module or "<" in qualname or "." in qualname:
        return None
    return f"{module}:{qualname}"


def resolve_worker_reference(reference: str) -> Callable:
    """Import a campaign's worker back from its ``module:qualname``."""
    module_name, _, qualname = reference.partition(":")
    worker = getattr(importlib.import_module(module_name), qualname)
    if not callable(worker):
        raise TypeError(f"worker reference {reference!r} is not callable")
    return worker


#: Default claim priority of enqueued items.  Claim order is the
#: lexicographic order of item names, which lead with ``p<priority>``:
#: a *numerically lower* priority is claimed first.
DEFAULT_PRIORITY = 50

#: Priority of interactively-requested items (results-service misses):
#: claimed ahead of default-priority background cache-warming work.
INTERACTIVE_PRIORITY = 10


def _clamp_priority(priority: int) -> int:
    return max(0, min(99, int(priority)))


def _item_name(index: int, key: str, priority: int = DEFAULT_PRIORITY) -> str:
    return f"p{_clamp_priority(priority):02d}-{index:06d}-{key[:12]}"


def _name_parts(name: str) -> Tuple[int, str]:
    """(priority, logical id) of an item name.

    Pre-priority names (``<index>-<key>``) parse as default priority, so
    a campaign enqueued by older code stays claimable and poisonable.
    """
    head, _, rest = name.partition("-")
    if len(head) == 3 and head.startswith("p") and head[1:].isdigit():
        return int(head[1:]), rest
    return DEFAULT_PRIORITY, name


def _item_priority(name: str) -> int:
    return _name_parts(name)[0]


def _item_logical(name: str) -> str:
    """The priority-free ``<index>-<key>`` identity of an item name."""
    return _name_parts(name)[1]


def _item_index(name: str) -> int:
    return int(_item_logical(name).split("-", 1)[0])


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    handle, temporary = tempfile.mkstemp(suffix=".tmp", dir=directory)
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(temporary, path)
    except OSError:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


@dataclass
class Campaign:
    """One enqueued sweep: its directory, item names, and knobs."""

    root: str
    names: List[str]
    worker: Optional[Callable]
    settings: ExecutionSettings

    @property
    def items_dir(self) -> str:
        return os.path.join(self.root, ITEMS_DIR)

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, LEASES_DIR)

    @property
    def done_dir(self) -> str:
        return os.path.join(self.root, DONE_DIR)

    @property
    def deaths_dir(self) -> str:
        return os.path.join(self.root, DEATHS_DIR)

    @property
    def poison_dir(self) -> str:
        return os.path.join(self.root, POISON_DIR)

    def item_path(self, name: str) -> str:
        return os.path.join(self.items_dir, name + ITEM_SUFFIX)

    def lease_path(self, name: str) -> str:
        return os.path.join(self.leases_dir, name + LEASE_SUFFIX)

    def result_path(self, name: str) -> str:
        return os.path.join(self.done_dir, name + RESULT_SUFFIX)

    def deaths_path(self, name: str) -> str:
        return os.path.join(self.deaths_dir, name)

    def poison_report_path(self, name: str) -> str:
        return os.path.join(self.poison_dir, name + ".json")


def campaign_digest(keys: Sequence[str]) -> str:
    """Content address of a campaign: a digest of its item keys.

    The item keys already fold in the worker's qualified name and every
    argument, so the same sweep re-enqueued from any process (a resumed
    supervisor included) derives the same campaign directory, and a
    different sweep can never collide with it.
    """
    material = "\n".join(keys)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def _settings_wire(settings: ExecutionSettings) -> Dict[str, Any]:
    return {
        "retries": settings.retries,
        "retry_delay": settings.retry_delay,
        "lease_ttl": settings.lease_ttl,
        "heartbeat_interval": settings.heartbeat_interval,
        "fault_plan": (
            settings.fault_plan.to_json() if settings.fault_plan is not None else None
        ),
    }


def _settings_from_wire(wire: Dict[str, Any]) -> ExecutionSettings:
    plan = wire.get("fault_plan")
    return ExecutionSettings(
        retries=int(wire.get("retries", 2)),
        retry_delay=float(wire.get("retry_delay", 0.05)),
        lease_ttl=float(wire.get("lease_ttl", 30.0)),
        heartbeat_interval=float(wire.get("heartbeat_interval", 5.0)),
        fault_plan=FaultPlan.from_json(plan) if plan else None,
    )


def _existing_names(root: str) -> Dict[str, str]:
    """Map each on-disk item's logical id to its actual (named) form.

    Priority is execution policy, not identity: the campaign digest
    excludes it, so re-enqueueing the same sweep at a different
    priority must reuse the names already on disk instead of growing a
    second item file for the same work unit.
    """
    existing: Dict[str, str] = {}
    for directory, suffix in (
        (os.path.join(root, ITEMS_DIR), ITEM_SUFFIX),
        (os.path.join(root, DONE_DIR), RESULT_SUFFIX),
    ):
        try:
            entries = os.listdir(directory)
        except OSError:
            continue
        for entry in entries:
            if entry.endswith(suffix):
                stem = entry[: -len(suffix)]
                existing.setdefault(_item_logical(stem), stem)
    return existing


def enqueue_campaign(
    worker: Callable,
    items: Sequence[Tuple[int, Any]],
    settings: ExecutionSettings,
    queue_dir: str,
    priority: Union[int, Sequence[int], None] = None,
) -> Campaign:
    """Materialize a sweep as a campaign directory (idempotent).

    Re-enqueueing the same sweep is a resume: item files are only
    written for items without a published result, so completed work is
    never re-opened.  ``priority`` (one value for the whole sweep or a
    per-item sequence; default :data:`DEFAULT_PRIORITY`) orders claims
    across everything sharing the queue directory -- lower values are
    claimed first -- without entering the campaign's content address.
    """
    keys = [item_key(worker, index, args) for index, args in items]
    if priority is None:
        priorities = [DEFAULT_PRIORITY] * len(keys)
    elif isinstance(priority, int):
        priorities = [priority] * len(keys)
    else:
        priorities = [int(value) for value in priority]
        if len(priorities) != len(keys):
            raise ValueError(
                f"per-item priority sequence has {len(priorities)} entries "
                f"for {len(keys)} items"
            )
    root = os.path.join(queue_dir, CAMPAIGN_PREFIX + campaign_digest(keys))
    existing = _existing_names(root)
    names = []
    for (index, _), key, item_priority in zip(items, keys, priorities):
        fresh = _item_name(index, key, item_priority)
        names.append(existing.get(_item_logical(fresh), fresh))
    campaign = Campaign(
        root=root,
        names=names,
        worker=worker,
        settings=settings,
    )
    for directory in (
        campaign.items_dir,
        campaign.leases_dir,
        campaign.done_dir,
        campaign.deaths_dir,
        campaign.poison_dir,
    ):
        os.makedirs(directory, exist_ok=True)
    manifest_path = os.path.join(root, CAMPAIGN_FILE)
    if not os.path.exists(manifest_path):
        manifest = {
            "version": 1,
            "worker": worker_reference(worker),
            "total": len(campaign.names),
            "settings": _settings_wire(settings),
        }
        _atomic_write(
            manifest_path, json.dumps(manifest, sort_keys=True).encode("utf-8")
        )
    enqueued = 0
    for (index, args), name in zip(items, campaign.names):
        if os.path.exists(campaign.result_path(name)):
            continue
        item_path = campaign.item_path(name)
        if not os.path.exists(item_path):
            _atomic_write(
                item_path,
                pickle.dumps((index, args), protocol=pickle.HIGHEST_PROTOCOL),
            )
            enqueued += 1
    _count("enqueued", enqueued)
    return campaign


def enqueue_item(
    worker: Callable,
    args: Any,
    settings: ExecutionSettings,
    queue_dir: str,
    priority: int = INTERACTIVE_PRIORITY,
) -> Tuple[Campaign, str]:
    """Enqueue one work unit as its own single-item campaign.

    The entry point of interactively-originated work (a results-service
    cache miss): the item defaults to :data:`INTERACTIVE_PRIORITY`, so
    cooperating workers claim it ahead of default-priority batch
    campaigns sharing the queue directory.  Idempotent like
    :func:`enqueue_campaign` -- re-enqueueing a unit that is already
    pending (or published) changes nothing.  Returns the campaign and
    the item's name within it.
    """
    campaign = enqueue_campaign(
        worker, [(0, args)], settings, queue_dir, priority=priority
    )
    return campaign, campaign.names[0]


def open_campaign(root: str, worker: Optional[Callable] = None) -> Campaign:
    """Attach to an existing campaign directory (worker side).

    The worker callable is resolved from the manifest's importable
    reference unless one is handed in directly (the supervisor's own
    spawned workers, which may hold a non-importable callable).
    """
    with open(os.path.join(root, CAMPAIGN_FILE), "r", encoding="utf-8") as stream:
        manifest = json.load(stream)
    if worker is None:
        reference = manifest.get("worker")
        if not reference:
            raise ValueError(
                f"campaign {root} has no importable worker reference; "
                "only its own supervisor's workers can serve it"
            )
        worker = resolve_worker_reference(reference)
    settings = _settings_from_wire(manifest.get("settings", {}))
    names = []
    for directory, suffix in (
        (os.path.join(root, ITEMS_DIR), ITEM_SUFFIX),
        (os.path.join(root, DONE_DIR), RESULT_SUFFIX),
    ):
        try:
            entries = os.listdir(directory)
        except OSError:
            continue
        names.extend(
            entry[: -len(suffix)] for entry in entries if entry.endswith(suffix)
        )
    return Campaign(
        root=root,
        names=sorted(set(names)),
        worker=worker,
        settings=settings,
    )


def publish_result(campaign: Campaign, name: str, payload: Dict[str, Any]) -> str:
    """Publish one item's outcome, first writer wins.

    Returns ``"stored"`` (this writer won), ``"duplicate"`` (someone
    already published identical bytes -- the benign double-completion),
    or ``"conflict"`` (someone published *different* bytes: ours are
    preserved as ``.conflict`` evidence and counted, the first writer's
    verdict stands).
    """
    path = campaign.result_path(name)
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # Hardlink publication: the payload is fully written to a temporary
    # file and linked into place.  The link both fails atomically when a
    # result already exists (the compare of the CAS) and can never show
    # a reader a torn half-written result.
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    handle, temporary = tempfile.mkstemp(suffix=".tmp", dir=directory)
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        try:
            os.link(temporary, path)
        except FileExistsError:
            try:
                with open(path, "rb") as stream:
                    existing = stream.read()
            except OSError:
                existing = b""
            if existing == data:
                _count("duplicates")
                return "duplicate"
            evidence = path + ".conflict"
            attempt = 0
            while os.path.exists(evidence):
                attempt += 1
                evidence = f"{path}.conflict.{attempt}"
            try:
                os.link(temporary, evidence)
            except OSError:
                pass
            _count("conflicts")
            return "conflict"
        _count("completed")
        return "stored"
    finally:
        try:
            os.unlink(temporary)
        except OSError:
            pass


def load_published(campaign: Campaign, name: str) -> Optional[Dict[str, Any]]:
    """Read one published outcome (corrupt entries are quarantined)."""
    path = campaign.result_path(name)
    try:
        with open(path, "rb") as stream:
            return pickle.load(stream)
    except FileNotFoundError:
        return None
    except Exception:
        quarantine_entry(path)
        return None


def _record_death(campaign: Campaign, name: str, kind: str, detail: str) -> None:
    """Append one line to an item's failure ledger (``kind detail``).

    The ledger is strictly line-oriented (one line = one failure), so
    the detail -- often a multi-line traceback -- is flattened.
    """
    path = campaign.deaths_path(name)
    os.makedirs(campaign.deaths_dir, exist_ok=True)
    flattened = " | ".join(part for part in detail.splitlines() if part.strip())
    line = f"{kind} {flattened}\n".encode("utf-8")
    with open(path, "ab") as stream:
        stream.write(line)


def _death_ledger(campaign: Campaign, name: str) -> List[str]:
    try:
        with open(campaign.deaths_path(name), "r", encoding="utf-8") as stream:
            return [line.strip() for line in stream if line.strip()]
    except OSError:
        return []


def _ledger_counts(ledger: Sequence[str]) -> Dict[str, int]:
    counts = {"reclaim": 0, "death": 0, "error": 0}
    for line in ledger:
        kind = line.split(" ", 1)[0]
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def poison_item(
    campaign: Campaign, name: str, ledger: Sequence[str], last_owner: str
) -> None:
    """Quarantine an item that keeps killing its workers.

    The item file moves to ``poison/``, a typed JSON report lands next
    to it, and a ``poison`` result is published so the campaign
    completes with a structured per-item failure instead of wedging on
    an item nothing can finish.
    """
    counts = _ledger_counts(ledger)
    report = {
        "item": name,
        "index": _item_index(name),
        "priority": _item_priority(name),
        "reclaims": counts["reclaim"],
        "worker_deaths": counts["death"],
        "errors": counts["error"],
        "retries": campaign.settings.retries,
        "last_owner": last_owner,
        "lease_ttl": campaign.settings.lease_ttl,
        "ledger": list(ledger),
    }
    try:
        _atomic_write(
            campaign.poison_report_path(name),
            json.dumps(report, sort_keys=True, indent=2).encode("utf-8"),
        )
    except OSError:
        pass
    item_path = campaign.item_path(name)
    try:
        os.replace(item_path, os.path.join(campaign.poison_dir, name + ITEM_SUFFIX))
    except OSError:
        try:
            os.unlink(item_path)
        except OSError:
            pass
    attempts = len(ledger)
    payload = {
        "index": _item_index(name),
        "status": STATUS_POISON,
        "value": None,
        "error": (
            f"poison item: its worker died {counts['reclaim'] + counts['death']} "
            f"time(s) (retry budget {campaign.settings.retries}); quarantined "
            f"with report {json.dumps(report, sort_keys=True)}"
        ),
        "attempts": attempts,
    }
    if publish_result(campaign, name, payload) == "stored":
        _count("poisoned")


#: Owner id planted by the ``stale-lease`` fault: a foreign host (so the
#: same-host dead-pid fast path cannot shortcut the test) with a dead
#: heartbeat, exercising exactly the worker-died-on-another-machine
#: reclaim path.
_FOREIGN_DEAD_OWNER = "elsewhere:0:stale"


class _AbandonLease(SimulatedWorkerDeath):
    """In-process stand-in for a death that leaves its lease behind."""


class _Heartbeat(threading.Thread):
    """Renews one lease on an interval until stopped (or paused)."""

    def __init__(self, path: str, owner: str, interval: float, ttl: float) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat:{os.path.basename(path)}")
        self.path = path
        self.owner = owner
        self.interval = interval
        self.ttl = ttl
        self.seq = 0
        self.lost = False
        self._pause_until = 0.0
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            if time.monotonic() < self._pause_until:
                continue  # A slow-heartbeat fault: skip renewals.
            self.seq += 1
            if not leases.renew(self.path, self.owner, self.seq, self.ttl):
                self.lost = True
                return

    def pause(self, seconds: float) -> None:
        self._pause_until = time.monotonic() + float(seconds)

    def stop(self) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=2.0)


class QueueWorker:
    """One cooperating worker draining a campaign's items.

    Claims items lease-first, runs them under a heartbeat, publishes
    outcomes first-writer-wins, and doubles as a reaper for its
    campaign.  ``parent_pid`` (supervisor-spawned workers) makes the
    worker exit when its supervisor dies, so a SIGKILLed run never
    leaves orphans silently draining the queue; external CLI workers
    pass no parent and keep serving across supervisor restarts.
    """

    def __init__(
        self,
        campaign: Campaign,
        owner: Optional[str] = None,
        allow_exit: bool = False,
        parent_pid: Optional[int] = None,
        poll: float = QUEUE_POLL,
    ) -> None:
        self.campaign = campaign
        self.owner = owner or leases.new_owner_id()
        self.allow_exit = allow_exit
        self.parent_pid = parent_pid
        self.poll = poll
        self.reaper = leases.Reaper(campaign.settings.lease_ttl)

    # -- lifecycle ----------------------------------------------------

    def parent_alive(self) -> bool:
        if self.parent_pid is None:
            return True
        return leases._pid_alive(self.parent_pid)

    def drain(self) -> int:
        """Serve the campaign until it is fully resolved.

        Returns the number of items this worker resolved.  Exits early
        when the supervising parent dies (see class docstring).
        """
        resolved = 0
        while self.parent_alive():
            progressed, pending = self.step()
            resolved += progressed
            if pending == 0:
                break
            if progressed == 0:
                time.sleep(self.poll)
        return resolved

    def step(self) -> Tuple[int, int]:
        """One scan: claim/run/publish what we can, then reap.

        Returns ``(items resolved by us, items still pending)``.
        """
        progressed = 0
        pending = 0
        try:
            entries = sorted(os.listdir(self.campaign.items_dir))
        except OSError:
            return 0, 0  # The campaign directory is gone: drained.
        for entry in entries:
            if not entry.endswith(ITEM_SUFFIX):
                continue
            if not self.parent_alive():
                return progressed, pending + 1
            name = entry[: -len(ITEM_SUFFIX)]
            if os.path.exists(self.campaign.result_path(name)):
                # Completed (possibly by a worker that died before its
                # cleanup): garbage-collect the item file.
                try:
                    os.unlink(self.campaign.item_path(name))
                except OSError:
                    pass
                continue
            if not leases.acquire(
                self.campaign.lease_path(name),
                self.owner,
                self.campaign.settings.lease_ttl,
            ):
                pending += 1
                continue
            outcome = self._run_claimed(name)
            if outcome:
                progressed += 1
            else:
                pending += 1
        self.reap()
        return progressed, pending

    # -- one claimed item ---------------------------------------------

    def _run_claimed(self, name: str) -> bool:
        """Run one item we hold the lease for.  True when resolved."""
        campaign = self.campaign
        lease_path = campaign.lease_path(name)
        try:
            with open(campaign.item_path(name), "rb") as stream:
                index, args = pickle.load(stream)
        except FileNotFoundError:
            leases.release(lease_path, self.owner)
            return False  # Completed and collected between scan and claim.
        except Exception:
            quarantine_entry(campaign.item_path(name))
            leases.release(lease_path, self.owner)
            return False
        ledger = _death_ledger(campaign, name)
        attempt = len(ledger) + 1
        plan = campaign.settings.fault_plan
        heartbeat = _Heartbeat(
            lease_path,
            self.owner,
            campaign.settings.heartbeat_interval,
            campaign.settings.lease_ttl,
        )
        heartbeat.start()
        try:
            if plan is not None:
                self._apply_queue_faults(plan, name, index, attempt, heartbeat)
                plan.fire(index, attempt, allow_exit=self.allow_exit)
            value = campaign.worker(args)
            payload = {
                "index": index,
                "status": STATUS_OK,
                "value": value,
                "error": None,
                "attempts": attempt,
            }
        except _AbandonLease:
            # The lease was handed to a fake dead foreign owner; leave
            # it for the reaper, which records the reclaim itself.
            heartbeat.stop()
            return False
        except SimulatedWorkerDeath as death:
            # The in-process stand-in for a worker kill: ledger it like
            # a real death and let a later pass (or sibling) retry.
            heartbeat.stop()
            _record_death(campaign, name, "death", describe_exception(death)[:200])
            leases.release(lease_path, self.owner)
            return self._maybe_poison(name)
        except Exception as failure:
            heartbeat.stop()
            _record_death(
                campaign, name, "error", describe_exception(failure)[:200]
            )
            ledger = _death_ledger(campaign, name)
            if _ledger_counts(ledger)["error"] > campaign.settings.retries:
                payload = {
                    "index": index,
                    "status": STATUS_ERROR,
                    "value": None,
                    "error": describe_exception(failure),
                    "attempts": attempt,
                }
                self._resolve(name, payload)
                _count("errors")
                return True
            leases.release(lease_path, self.owner)
            return False
        heartbeat.stop()
        self._resolve(name, payload)
        return True

    def _resolve(self, name: str, payload: Dict[str, Any]) -> None:
        publish_result(self.campaign, name, payload)
        try:
            os.unlink(self.campaign.item_path(name))
        except OSError:
            pass
        leases.release(self.campaign.lease_path(name), self.owner)
        self.reaper.forget(self.campaign.lease_path(name))

    def _apply_queue_faults(
        self, plan: FaultPlan, name: str, index: int, attempt: int, heartbeat: _Heartbeat
    ) -> None:
        """Interpret the queue-specific fault kinds for this claim."""
        for fault in plan.at(index, attempt):
            if fault.kind not in QUEUE_FAULT_KINDS:
                continue
            lease_path = self.campaign.lease_path(name)
            if fault.kind == "stale-lease":
                # Die holding a lease whose heartbeat reads as ancient
                # and whose owner is on another machine: no dead-pid
                # fast path applies, the reaper must prove staleness
                # from the lease document alone.
                heartbeat.stop()
                try:
                    _atomic_write(
                        lease_path,
                        json.dumps(
                            {
                                "owner": _FOREIGN_DEAD_OWNER,
                                "seq": 0,
                                "ts": 0.0,
                                "ttl": 0.0,
                            }
                        ).encode("utf-8"),
                    )
                except OSError:
                    pass
                if self.allow_exit:
                    os._exit(KILL_EXIT_CODE)
                raise _AbandonLease(
                    f"injected stale-lease death at item {index} attempt {attempt}"
                )
            if fault.kind == "double-claim":
                # Drop our own lease (as if reclaimed), let a sibling
                # re-claim and finish first, then complete anyway: the
                # first-writer-wins publication must resolve it.
                heartbeat.stop()
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                time.sleep(fault.seconds)
            elif fault.kind == "slow-heartbeat":
                heartbeat.pause(fault.seconds)
                time.sleep(fault.seconds)

    def _maybe_poison(self, name: str) -> bool:
        ledger = _death_ledger(self.campaign, name)
        counts = _ledger_counts(ledger)
        if counts["reclaim"] + counts["death"] > self.campaign.settings.retries:
            poison_item(self.campaign, name, ledger, self.owner)
            return True
        return False

    # -- reaping ------------------------------------------------------

    def reap(self) -> int:
        """Reclaim stale leases; poison items past their death budget.

        Returns the number of leases reclaimed.  Every worker and the
        supervisor reap, so recovery needs no dedicated process and
        survives any single participant's death.
        """
        campaign = self.campaign
        try:
            entries = os.listdir(campaign.leases_dir)
        except OSError:
            return 0
        reclaimed = 0
        for entry in sorted(entries):
            if not entry.endswith(LEASE_SUFFIX):
                continue
            name = entry[: -len(LEASE_SUFFIX)]
            path = campaign.lease_path(name)
            lease = leases.read_lease(path)
            if lease is None:
                continue
            if lease.get("owner") == self.owner:
                continue  # Never reap ourselves.
            if os.path.exists(campaign.result_path(name)):
                # Published but never released (death after publish):
                # the claim is moot, clear it without a death entry.
                leases.reclaim(path, self.owner)
                self.reaper.forget(path)
                continue
            if not self.reaper.is_stale(path, lease):
                continue
            document = leases.reclaim(path, self.owner)
            if document is None:
                continue  # Lost the reclaim race; someone else owns it.
            self.reaper.forget(path)
            reclaimed += 1
            _count("reclaims")
            _record_death(
                campaign,
                name,
                "reclaim",
                f"stale lease of {document.get('owner', '?')} "
                f"(seq {document.get('seq', 0)})",
            )
            self._maybe_poison(name)
        return reclaimed


def _spawned_worker_main(worker, root: str, parent_pid: int) -> None:
    """Entry point of a supervisor-spawned local queue worker."""
    try:
        campaign = open_campaign(root, worker=worker)
    except (OSError, ValueError):
        return
    QueueWorker(campaign, allow_exit=True, parent_pid=parent_pid).drain()


class QueueExecutor(Executor):
    """Durable work-queue execution behind the standard executor seam.

    The supervisor enqueues the campaign, spawns local queue workers
    (any external ``repro-frontend worker`` processes pointed at the
    same queue directory simply join in), collects published results,
    reaps stale leases, and -- like the process executor -- degrades to
    in-process draining when no worker can be spawned at all.
    """

    name = "queue"

    def run(self, worker, items, settings, on_result=None):
        items = list(items)
        if not items:
            return RunOutcome([], False)
        from repro.api import runtime_config

        queue_dir = settings.queue_dir or runtime_config.current_queue_dir()
        ephemeral = queue_dir is None
        if ephemeral:
            queue_dir = tempfile.mkdtemp(prefix="repro-queue-")
        campaign = enqueue_campaign(worker, items, settings, queue_dir)
        try:
            return self._supervise(campaign, items, settings, on_result)
        finally:
            if ephemeral:
                shutil.rmtree(queue_dir, ignore_errors=True)

    def _supervise(self, campaign, items, settings, on_result):
        order = [index for index, _ in items]
        args_of = dict(items)
        name_of = dict(zip(order, campaign.names))
        results: Dict[int, ItemResult] = {}
        # Resume: everything already published replays without running.
        for index in order:
            payload = load_published(campaign, name_of[index])
            if payload is None:
                continue
            status = payload.get("status", STATUS_OK)
            results[index] = ItemResult(
                index,
                STATUS_REPLAYED if status == STATUS_OK else status,
                value=payload.get("value"),
                error=payload.get("error"),
                attempts=int(payload.get("attempts", 0)),
            )
        _count("replayed", len(results))
        unresolved = [index for index in order if index not in results]
        degraded = False
        if unresolved:
            degraded = self._drive(
                campaign, unresolved, args_of, name_of, results, settings, on_result
            )
        if all(results[index].ok for index in order):
            # A fully successful campaign leaves nothing to resume:
            # retire its directory (failures keep it as evidence).
            shutil.rmtree(campaign.root, ignore_errors=True)
        return RunOutcome([results[index] for index in order], degraded)

    def _drive(
        self, campaign, unresolved, args_of, name_of, results, settings, on_result
    ) -> bool:
        count = settings.processes
        if count is None:
            count = os.cpu_count() or 1
        count = max(1, min(int(count), len(unresolved)))
        ctx = multiprocessing.get_context()
        workers: List[Any] = []

        def spawn() -> bool:
            try:
                process = ctx.Process(
                    target=_spawned_worker_main,
                    args=(campaign.worker, campaign.root, os.getpid()),
                    daemon=True,
                )
                process.start()
            except Exception:
                return False
            workers.append(process)
            return True

        supervisor = QueueWorker(campaign, allow_exit=False)
        degraded = False
        for _ in range(count):
            spawn()
        try:
            while True:
                fresh = self._collect(campaign, unresolved, name_of, results)
                for result in fresh:
                    _notify(on_result, result)
                if not any(index not in results for index in unresolved):
                    break
                supervisor.reap()
                self._heal_missing_items(
                    campaign, unresolved, args_of, name_of, results
                )
                workers[:] = [process for process in workers if process.is_alive()]
                if not workers and not spawn():
                    # No worker alive and none spawnable: drain what is
                    # left in-process so the sweep still completes.
                    degraded = True
                    supervisor.drain()
            return degraded
        finally:
            deadline = time.monotonic() + 5.0
            for process in workers:
                process.join(timeout=max(0.1, deadline - time.monotonic()))
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)

    def _collect(self, campaign, unresolved, name_of, results) -> List[ItemResult]:
        fresh = []
        for index in unresolved:
            if index in results:
                continue
            payload = load_published(campaign, name_of[index])
            if payload is None:
                continue
            result = ItemResult(
                index,
                payload.get("status", STATUS_OK),
                value=payload.get("value"),
                error=payload.get("error"),
                attempts=int(payload.get("attempts", 1)),
            )
            results[index] = result
            fresh.append(result)
        if not fresh:
            time.sleep(QUEUE_POLL)
        return fresh

    def _heal_missing_items(
        self, campaign, unresolved, args_of, name_of, results
    ) -> None:
        """Re-materialize items that lost both their file and result.

        Can only happen through outside interference or a quarantined
        (corrupt) file -- but an invariant violation must heal, not
        hang the campaign.
        """
        for index in unresolved:
            if index in results:
                continue
            name = name_of[index]
            if os.path.exists(campaign.item_path(name)) or os.path.exists(
                campaign.result_path(name)
            ):
                continue
            try:
                _atomic_write(
                    campaign.item_path(name),
                    pickle.dumps(
                        (index, args_of[index]), protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
            except OSError:
                pass


def _most_urgent_item(queue_dir: str, entry: str) -> str:
    """Sort key for campaign visit order: the smallest pending item name.

    Item names lead with ``p<priority>``, so the minimum name *is* the
    most urgent claimable unit.  Campaigns with nothing pending sort
    last (``~`` follows every item spelling in ASCII).
    """
    try:
        items = os.listdir(os.path.join(queue_dir, entry, ITEMS_DIR))
    except OSError:
        return "~"
    pending = [name for name in items if name.endswith(ITEM_SUFFIX)]
    return min(pending) if pending else "~"


def serve_queue(
    queue_dir: str,
    max_idle: Optional[float] = 30.0,
    poll: float = 0.2,
) -> Dict[str, int]:
    """Serve every campaign under a queue directory (the CLI worker).

    Scans for campaign directories, resolves each campaign's worker by
    its importable reference, and claims items until the queue has been
    idle -- no campaign with claimable work -- for ``max_idle`` seconds
    (``None``: forever).  Campaigns are visited in order of their most
    urgent pending item (item names lead with the claim priority), so
    an interactive single-item campaign is drained before the bulk of
    a default-priority batch sweep.  Returns the process-wide queue
    counters.
    """
    served: Dict[str, QueueWorker] = {}
    last_work = time.monotonic()
    while True:
        worked = False
        try:
            entries = sorted(os.listdir(queue_dir))
        except OSError:
            entries = []
        entries.sort(key=lambda entry: _most_urgent_item(queue_dir, entry))
        for entry in entries:
            root = os.path.join(queue_dir, entry)
            if not entry.startswith(CAMPAIGN_PREFIX) or not os.path.isdir(root):
                continue
            queue_worker = served.get(root)
            if queue_worker is None:
                try:
                    campaign = open_campaign(root)
                except (OSError, ValueError, ImportError, AttributeError):
                    continue  # Unreadable or locally unresolvable worker.
                queue_worker = QueueWorker(campaign, allow_exit=True, poll=poll)
                served[root] = queue_worker
            progressed, _pending = queue_worker.step()
            if progressed:
                worked = True
            if not os.path.isdir(root):
                served.pop(root, None)
        now = time.monotonic()
        if worked:
            last_work = now
        elif max_idle is not None and now - last_work > max_idle:
            return queue_info()
        else:
            time.sleep(poll)


def _register() -> None:
    from repro.workloads.trace_cache import register_stats_provider

    register_stats_provider("queue", queue_info)
    register_executor("queue", QueueExecutor)


_register()
