"""Supervised executors: per-item dispatch, retries, and worker care.

This module replaces the bare ``multiprocessing.Pool.map`` behind every
sweep with executors that treat each item as its own unit of work:

* :class:`SerialExecutor` runs items in-process (the historical serial
  path), with the same retry/fault semantics as the pool so the two
  modes stay bit-identical on success.
* :class:`SupervisedProcessExecutor` owns N worker processes directly
  (a private task pipe and result pipe per worker -- no shared locks a
  dying worker could wedge) and supervises them: a crashed worker is
  detected and replaced and its item retried;
  a hung item is killed at the per-item timeout and reported as such;
  transient exceptions retry with exponential backoff plus
  deterministic jitter; and when the pool itself cannot be built the
  run degrades to serial in-process execution instead of failing.

Executors are looked up by name through :func:`resolve_executor` --
``"serial"``, ``"processes"``, or an entry-point style
``"module:attribute"`` string -- which is the seam a distributed
work-queue executor plugs into without touching any call site.

Every item ends as an :class:`~repro.exec.results.ItemResult`;
:func:`execute_items` is the one entry point that combines journal
replay (checkpoint/resume), executor dispatch, and journaling of fresh
results into a :class:`~repro.exec.results.SweepReport`.
"""

from __future__ import annotations

import importlib
import inspect
import multiprocessing
import multiprocessing.connection
import os
import random
import time
from collections import namedtuple
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec import journal as journal_module
from repro.exec.faults import FaultPlan, SimulatedWorkerDeath
from repro.exec.results import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REPLAYED,
    STATUS_TIMEOUT,
    STATUS_WORKER_DEATH,
    ItemResult,
    SweepReport,
    describe_exception,
)

#: Supervisor poll interval: how often worker health and per-item
#: deadlines are checked while waiting for results.
SUPERVISOR_TICK = 0.05

#: ``(results, degraded)`` -- what one executor run yields internally.
RunOutcome = namedtuple("RunOutcome", ["results", "degraded"])


class ExecutionSettingsError(ValueError):
    """An :class:`ExecutionSettings` knob is out of range.

    Raised at construction -- zero or negative timeouts, delays, and
    lease intervals used to slip through and misbehave deep inside a
    sweep; now they fail fast with a typed error.
    """


@dataclass(frozen=True)
class ExecutionSettings:
    """Everything an executor needs beyond the worker and its items."""

    #: Worker-process count (``None``: CPU count, capped by item count).
    processes: Optional[int] = None
    #: Transient-failure retries per item (0 disables retrying).
    retries: int = 2
    #: Per-item wall-clock timeout in seconds (``None``: unlimited).
    #: Enforced by the process executor only -- in-process execution
    #: cannot preempt a hung item.
    item_timeout: Optional[float] = None
    #: Base backoff delay between retries, in seconds.
    retry_delay: float = 0.05
    #: Deterministic fault plan injected into workers (tests/chaos).
    fault_plan: Optional[FaultPlan] = None
    #: Durable work-queue directory (``queue`` executor; ``None``: a
    #: private per-campaign temporary directory).
    queue_dir: Optional[str] = None
    #: Queue lease time-to-live in seconds (``queue`` executor).
    lease_ttl: float = 30.0
    #: Queue heartbeat renewal interval in seconds (< ``lease_ttl``).
    heartbeat_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ExecutionSettingsError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.item_timeout is not None and self.item_timeout <= 0:
            raise ExecutionSettingsError(
                f"item_timeout must be positive (or None for unlimited), "
                f"got {self.item_timeout!r}"
            )
        if self.retry_delay <= 0:
            raise ExecutionSettingsError(
                f"retry_delay must be positive, got {self.retry_delay!r}"
            )
        if self.lease_ttl <= 0:
            raise ExecutionSettingsError(
                f"lease_ttl must be positive, got {self.lease_ttl!r}"
            )
        if self.heartbeat_interval <= 0:
            raise ExecutionSettingsError(
                f"heartbeat_interval must be positive, "
                f"got {self.heartbeat_interval!r}"
            )
        if self.heartbeat_interval >= self.lease_ttl:
            raise ExecutionSettingsError(
                f"heartbeat_interval ({self.heartbeat_interval!r}) must be "
                f"smaller than lease_ttl ({self.lease_ttl!r})"
            )


def backoff_delay(settings: ExecutionSettings, index: int, attempt: int) -> float:
    """Exponential backoff with deterministic jitter.

    ``retry_delay * 2^(attempt-1)``, jittered up to +25% by an RNG
    seeded from the item and attempt -- so reruns sleep identically
    (reproducible schedules) while concurrent retries still spread out.
    """
    if settings.retry_delay <= 0:
        return 0.0
    jitter = random.Random(f"repro-backoff:{index}:{attempt}").random()
    return settings.retry_delay * (2 ** (attempt - 1)) * (1.0 + 0.25 * jitter)


class Executor:
    """Interface every executor implements (see :func:`resolve_executor`)."""

    #: Registry name, quoted in sweep reports.
    name = "base"

    def run(
        self,
        worker: Callable,
        items: Sequence[Tuple[int, Any]],
        settings: ExecutionSettings,
        on_result: Optional[Callable[[ItemResult], None]] = None,
    ) -> RunOutcome:
        """Run ``worker`` over ``(index, args)`` items, one result each.

        ``on_result`` (when given) is invoked with each item's final
        :class:`ItemResult` *the moment it is resolved* -- this is the
        checkpointing hook: the journal records successes incrementally
        through it, so a sweep killed mid-run keeps every item that had
        already finished.  Executors that never call it still work; the
        caller then journals from the returned results, protecting
        completed-run resumes only.
        """
        raise NotImplementedError


def _run_item_in_process(
    worker: Callable,
    index: int,
    args: Any,
    settings: ExecutionSettings,
    first_attempt: int = 1,
) -> ItemResult:
    """Serial execution of one item with full retry/fault semantics.

    ``kill`` faults surface as :class:`SimulatedWorkerDeath` (the
    in-process stand-in for a dead worker) and are retried exactly like
    a real worker death would be.
    """
    attempt = first_attempt
    while True:
        try:
            if settings.fault_plan is not None:
                settings.fault_plan.fire(index, attempt, allow_exit=False)
            value = worker(args)
            return ItemResult(index, STATUS_OK, value=value, attempts=attempt)
        except SimulatedWorkerDeath as death:
            status, error = STATUS_WORKER_DEATH, describe_exception(death)
        except Exception as failure:
            status, error = STATUS_ERROR, describe_exception(failure)
        if attempt > settings.retries:
            return ItemResult(index, status, error=error, attempts=attempt)
        time.sleep(backoff_delay(settings, index, attempt))
        attempt += 1


class SerialExecutor(Executor):
    """In-process execution, item by item, in order."""

    name = "serial"

    def run(self, worker, items, settings, on_result=None):
        results = []
        for index, args in items:
            result = _run_item_in_process(worker, index, args, settings)
            _notify(on_result, result)
            results.append(result)
        return RunOutcome(results, False)


def _worker_main(worker, plan_json, task_conn, result_conn, parent_conns=()) -> None:
    """Loop of one supervised worker process.

    Tasks are ``(index, attempt, args)``; replies are ``(index,
    attempt, status, payload)`` where a success payload is the item's
    value.  ``Connection.send`` pickles synchronously in this thread
    (no feeder thread a dying sibling could wedge), so an unpicklable
    result raises right here and is reported as an error.

    ``parent_conns`` are the supervisor-side pipe ends this process
    inherited at spawn.  They must be closed *here*: otherwise this
    worker's own duplicate of the task pipe's write end would keep the
    pipe open forever, and a supervisor death (crash, SIGKILL) would
    leave the worker blocked in ``recv`` as an orphan instead of
    reading EOF and exiting.
    """
    for conn in parent_conns:
        try:
            conn.close()
        except OSError:
            pass
    plan = FaultPlan.from_json(plan_json) if plan_json else None
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, attempt, args = task
        try:
            if plan is not None:
                plan.fire(index, attempt, allow_exit=True)
            result_conn.send((index, attempt, STATUS_OK, worker(args)))
        except Exception as failure:
            try:
                result_conn.send(
                    (index, attempt, STATUS_ERROR, describe_exception(failure))
                )
            except (OSError, ValueError):
                return


class _WorkerHandle:
    """One supervised worker process plus its private task/result pipes.

    A pipe per worker means no lock is ever shared across workers: a
    worker dying hard (``os._exit``, SIGKILL, OOM) can at worst tear
    its *own* pipe -- which the supervisor reads as an ``EOFError`` and
    resolves through the normal dead-worker path -- and can never block
    another worker's result delivery.
    """

    def __init__(self, ctx, worker, plan_json) -> None:
        task_recv, self.task_conn = ctx.Pipe(duplex=False)
        self.result_conn, result_send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                worker,
                plan_json,
                task_recv,
                result_send,
                (self.task_conn, self.result_conn),
            ),
            daemon=True,
        )
        self.process.start()
        # The parent's copies of the child-side ends: close them so a
        # dead worker surfaces as EOF on result_conn.
        task_recv.close()
        result_send.close()
        #: ``(index, attempt)`` in flight, or ``None`` when idle.
        self.item: Optional[Tuple[int, int]] = None
        #: Monotonic deadline of the in-flight item, or ``None``.
        self.deadline: Optional[float] = None

    def assign(self, index: int, attempt: int, args: Any, timeout: Optional[float]) -> None:
        self.item = (index, attempt)
        self.deadline = (time.monotonic() + timeout) if timeout is not None else None
        self.task_conn.send((index, attempt, args))

    def close(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


def _start_worker(ctx, worker, plan_json) -> _WorkerHandle:
    """Spawn one worker (module-level so tests can break the pool)."""
    return _WorkerHandle(ctx, worker, plan_json)


class SupervisedProcessExecutor(Executor):
    """Per-item dispatch over directly supervised worker processes.

    Unlike ``Pool.map`` -- where one crashed or hung worker aborts (or
    wedges) the whole sweep and discards every completed item -- the
    supervisor knows which item every worker holds, so it can replace
    dead workers, kill and report hung items, retry transient failures,
    and always account for every item.  When no worker can be spawned
    at all, the remaining items run serially in-process (``degraded``).
    """

    name = "processes"

    def run(self, worker, items, settings, on_result=None):
        items = list(items)
        if not items:
            return RunOutcome([], False)
        count = settings.processes
        if count is None:
            count = os.cpu_count() or 1
        count = max(1, min(int(count), len(items)))
        ctx = multiprocessing.get_context()
        plan_json = (
            settings.fault_plan.to_json() if settings.fault_plan is not None else None
        )
        supervisor = _Supervisor(worker, plan_json, ctx, settings, count, on_result)
        try:
            return supervisor.run(items)
        finally:
            supervisor.shutdown()


def _notify(on_result, result: ItemResult) -> None:
    """Deliver one resolved item to the caller's checkpoint hook.

    The hook is an optimisation (journaling), never a failure: an
    exception inside it must not take down an otherwise healthy sweep.
    """
    if on_result is None:
        return
    try:
        on_result(result)
    except Exception:
        pass


class _Supervisor:
    """The event loop behind :class:`SupervisedProcessExecutor`."""

    def __init__(self, worker, plan_json, ctx, settings, count, on_result=None) -> None:
        self.worker = worker
        self.plan_json = plan_json
        self.ctx = ctx
        self.settings = settings
        self.count = count
        self.on_result = on_result
        self.workers: List[_WorkerHandle] = []
        self.args: Dict[int, Any] = {}
        #: ``(index, attempt, ready_at)`` waiting for a worker.
        self.pending: List[Tuple[int, int, float]] = []
        self.results: Dict[int, ItemResult] = {}
        self.degraded = False

    def run(self, items: Sequence[Tuple[int, Any]]) -> RunOutcome:
        order = [index for index, _ in items]
        for index, args in items:
            self.args[index] = args
            self.pending.append((index, 1, 0.0))
        for _ in range(self.count):
            self._spawn()
        while len(self.results) < len(order):
            if not self.workers and not self._spawn():
                # The pool is broken beyond repair: no worker alive and
                # none spawnable.  Finish everything unresolved
                # serially so the sweep still returns complete results.
                return self._degrade(order)
            self._assign()
            self._drain()
            self._check_health()
        return RunOutcome([self.results[index] for index in order], self.degraded)

    # -- worker lifecycle --------------------------------------------

    def _spawn(self) -> bool:
        try:
            handle = _start_worker(self.ctx, self.worker, self.plan_json)
        except Exception:
            return False
        self.workers.append(handle)
        return True

    def _retire(self, handle: _WorkerHandle, kill: bool = False) -> None:
        self.workers.remove(handle)
        if kill and handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=1.0)
        handle.close()

    def _degrade(self, order: Sequence[int]) -> RunOutcome:
        self.degraded = True
        unresolved = [
            (index, self._attempt_of(index), self.args[index])
            for index in order
            if index not in self.results
        ]
        for index, attempt, args in unresolved:
            self._finish(
                _run_item_in_process(self.worker, index, args, self.settings, attempt)
            )
        return RunOutcome([self.results[index] for index in order], True)

    def _attempt_of(self, index: int) -> int:
        for pending_index, attempt, _ in self.pending:
            if pending_index == index:
                return attempt
        return 1

    def _finish(self, result: ItemResult) -> None:
        """Record one item's final verdict and checkpoint it."""
        self.results[result.index] = result
        _notify(self.on_result, result)

    # -- the event loop ----------------------------------------------

    def _assign(self) -> None:
        now = time.monotonic()
        for handle in list(self.workers):
            if handle.item is not None or not self.pending:
                continue
            if not handle.process.is_alive():
                # An idle worker died (e.g. a kill fault fired after
                # its reply was queued): replace it before assigning.
                self._retire(handle)
                if not self._spawn():
                    continue
                handle = self.workers[-1]
            slot = next(
                (
                    position
                    for position, (_, _, ready_at) in enumerate(self.pending)
                    if ready_at <= now
                ),
                None,
            )
            if slot is None:
                return
            index, attempt, _ = self.pending.pop(slot)
            try:
                handle.assign(
                    index, attempt, self.args[index], self.settings.item_timeout
                )
            except (OSError, ValueError):
                # The worker died between the liveness check and the
                # send: put the item back untouched and replace the
                # worker through the normal retirement path.
                handle.item = None
                handle.deadline = None
                self.pending.insert(0, (index, attempt, now))
                self._retire(handle)
                self._spawn()

    def _drain(self) -> None:
        busy = {
            handle.result_conn: handle
            for handle in self.workers
            if handle.item is not None
        }
        ready = multiprocessing.connection.wait(
            list(busy), timeout=SUPERVISOR_TICK
        )
        for conn in ready:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                continue  # A torn pipe: _check_health resolves the death.
            self._handle_message(busy[conn], message)

    def _handle_message(self, handle: _WorkerHandle, message) -> None:
        index, attempt, status, payload = message
        if handle.item == (index, attempt):
            handle.item = None
            handle.deadline = None
        if index in self.results:
            return  # Already resolved (e.g. timed out); verdict stands.
        if status == STATUS_OK:
            self._finish(ItemResult(index, STATUS_OK, value=payload, attempts=attempt))
            return
        self._retry_or_fail(index, attempt, status, payload)

    def _retry_or_fail(self, index: int, attempt: int, status: str, error: str) -> None:
        if attempt <= self.settings.retries:
            ready_at = time.monotonic() + backoff_delay(self.settings, index, attempt)
            self.pending.append((index, attempt + 1, ready_at))
        else:
            self._finish(ItemResult(index, status, error=error, attempts=attempt))

    def _check_health(self) -> None:
        now = time.monotonic()
        for handle in list(self.workers):
            if handle.item is None:
                continue
            index, attempt = handle.item
            if not handle.process.is_alive():
                exitcode = handle.process.exitcode
                self._retire(handle)
                self._retry_or_fail(
                    index,
                    attempt,
                    STATUS_WORKER_DEATH,
                    f"worker process died (exitcode {exitcode}) "
                    f"while running item {index}",
                )
                self._spawn()
            elif handle.deadline is not None and now > handle.deadline:
                self._retire(handle, kill=True)
                self._finish(
                    ItemResult(
                        index,
                        STATUS_TIMEOUT,
                        error=(
                            f"item exceeded the per-item timeout of "
                            f"{self.settings.item_timeout}s and its worker was killed"
                        ),
                        attempts=attempt,
                    )
                )
                self._spawn()

    def shutdown(self) -> None:
        for handle in self.workers:
            try:
                handle.task_conn.send(None)
            except (OSError, ValueError):
                pass
        for handle in self.workers:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=0.5)
            handle.close()
        self.workers.clear()


#: Executor registry: name -> zero-argument factory.
_REGISTRY: Dict[str, Callable[[], Executor]] = {
    "serial": SerialExecutor,
    "processes": SupervisedProcessExecutor,
}


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Register (or replace) a named executor factory.

    This is the plug-in seam: a distributed work-queue backend
    registers itself here (or is addressed as ``"module:attribute"``
    without registration) and every sweep can select it through
    ``RuntimeConfig.executor`` / ``REPRO_EXECUTOR``.
    """
    _REGISTRY[name] = factory


def executor_names() -> List[str]:
    """The registered executor names, sorted."""
    return sorted(_REGISTRY)


def resolve_executor(name: str) -> Executor:
    """Instantiate an executor by registry name or entry point.

    ``"module:attribute"`` imports ``module`` and calls ``attribute``
    (a zero-argument factory -- typically the executor class itself).
    """
    factory = _REGISTRY.get(name)
    if factory is None and ":" in name:
        module_name, _, attribute = name.partition(":")
        try:
            factory = getattr(importlib.import_module(module_name), attribute)
        except (ImportError, AttributeError) as error:
            raise ValueError(
                f"cannot load executor entry point {name!r}: {error}"
            ) from error
    if factory is None:
        known = ", ".join(executor_names())
        raise ValueError(
            f"unknown executor {name!r}; expected one of {known} "
            "or a 'module:attribute' entry point"
        )
    executor = factory()
    runner = getattr(executor, "run", None)
    if not callable(runner):
        raise TypeError(f"executor {name!r} has no callable run() method")
    return executor


def _accepts_on_result(run: Callable) -> bool:
    """Whether an executor's ``run`` takes the checkpoint hook.

    Entry-point executors written against the original three-argument
    interface keep working: they just skip incremental checkpointing
    and are journaled from their returned results instead.
    """
    try:
        signature = inspect.signature(run)
    except (TypeError, ValueError):
        return True
    if any(
        parameter.kind == inspect.Parameter.VAR_POSITIONAL
        for parameter in signature.parameters.values()
    ):
        return True
    return "on_result" in signature.parameters


def execute_items(
    worker: Callable,
    arguments: Sequence,
    settings: ExecutionSettings,
    executor: Executor,
    journal: Optional[journal_module.SweepJournal] = None,
) -> SweepReport:
    """Run a sweep: journal replay + supervised execution + journaling.

    With a journal, previously completed items are replayed from disk
    (status ``"replayed"``, bit-identical values via pickle) and only
    the missing ones are dispatched; every fresh success is journaled
    the moment its result reaches the supervisor (the executors'
    ``on_result`` hook), so a kill at any point loses at most the
    in-flight items.
    """
    arguments = list(arguments)
    order = list(range(len(arguments)))
    replayed: Dict[int, ItemResult] = {}
    keys: Dict[int, str] = {}
    journaled: set = set()
    if journal is not None:
        stored = journal.load()
        for index in order:
            key = journal_module.item_key(worker, index, arguments[index])
            keys[index] = key
            if key in stored:
                replayed[index] = ItemResult(
                    index, STATUS_REPLAYED, value=stored[key], attempts=0
                )
        journal_module.count_replays(len(replayed))

    def checkpoint(result: ItemResult) -> None:
        if result.status == STATUS_OK and result.index not in journaled:
            journaled.add(result.index)
            journal.record(keys[result.index], result.value)

    remaining = [(index, arguments[index]) for index in order if index not in replayed]
    if remaining:
        hook = checkpoint if journal is not None else None
        if hook is not None and not _accepts_on_result(executor.run):
            hook = None  # A pre-hook custom executor; see safety net below.
        if hook is not None:
            outcome = executor.run(worker, remaining, settings, hook)
        else:
            outcome = executor.run(worker, remaining, settings)
    else:
        outcome = RunOutcome([], False)
    if journal is not None:
        # Safety net for executors that never call the hook (a custom
        # entry point): journal whatever only surfaced in the results.
        for result in outcome.results:
            checkpoint(result)
    merged: Dict[int, ItemResult] = dict(replayed)
    for result in outcome.results:
        merged[result.index] = result
    return SweepReport(
        items=[merged[index] for index in order],
        executor=executor.name,
        degraded=outcome.degraded,
    )
