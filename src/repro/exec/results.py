"""Typed per-item outcomes of a supervised sweep.

A supervised sweep never lets one bad item discard the others: every
item finishes as an :class:`ItemResult` -- a value, a captured
exception, a timeout, or a worker death -- and the whole run is
summarised by a :class:`SweepReport`.  Callers that want the historical
"list of values" contract go through :meth:`SweepReport.values`, which
raises a :class:`SweepError` carrying the full structured failure
report (and the partial results) instead of a raw traceback from a
random worker.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Item completed normally; ``value`` holds the worker's return value.
STATUS_OK = "ok"
#: Item was replayed from a sweep journal (checkpoint/resume).
STATUS_REPLAYED = "replayed"
#: Worker raised; ``error`` holds the rendered exception.
STATUS_ERROR = "error"
#: Item exceeded the per-item timeout and its worker was killed.
STATUS_TIMEOUT = "timeout"
#: The worker process died (crash, ``os._exit``, external kill).
STATUS_WORKER_DEATH = "worker-death"
#: The item killed its worker (or leaked its lease) too many times and
#: was quarantined as a poison item; ``error`` holds the typed report.
STATUS_POISON = "poison"

#: Every status an :class:`ItemResult` can carry, in severity order.
ITEM_STATUSES = (
    STATUS_OK,
    STATUS_REPLAYED,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    STATUS_WORKER_DEATH,
    STATUS_POISON,
)

#: Statuses that count as success (a usable value is present).
SUCCESS_STATUSES = frozenset({STATUS_OK, STATUS_REPLAYED})


def describe_exception(error: BaseException, limit: int = 6) -> str:
    """One-string rendering of an exception (type, message, short tail).

    Used to ship worker-side failures across the result queue without
    pickling the exception object itself (whose type may not exist or
    unpickle cleanly in the supervisor).
    """
    rendered = "".join(
        traceback.format_exception(type(error), error, error.__traceback__, limit=limit)
    ).strip()
    return rendered or repr(error)


@dataclass
class ItemResult:
    """How one sweep item ended up.

    ``attempts`` counts every try including the final one; a result
    that succeeded on its second attempt after a transient failure has
    ``attempts == 2`` and ``status == "ok"``.
    """

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Whether the item produced a usable value."""
        return self.status in SUCCESS_STATUSES


class SweepError(RuntimeError):
    """A sweep finished with permanently failed items.

    Carries the full :class:`SweepReport` -- including every partial
    result -- so callers can salvage completed work; the message is the
    structured failure report, not one worker's raw traceback.
    """

    def __init__(self, report: "SweepReport") -> None:
        super().__init__(report.failure_report())
        self.report = report


@dataclass
class SweepReport:
    """Outcome of one supervised sweep, item by item.

    ``items`` are in argument order.  ``degraded`` is set when the
    process pool itself broke (e.g. fork unavailable or every worker
    unspawnable) and the remaining items were finished serially
    in-process.
    """

    items: List[ItemResult] = field(default_factory=list)
    executor: str = "serial"
    degraded: bool = False

    def failures(self) -> List[ItemResult]:
        """The items that permanently failed, in index order."""
        return [item for item in self.items if not item.ok]

    def counts(self) -> Dict[str, int]:
        """Number of items per final status."""
        counts: Dict[str, int] = {}
        for item in self.items:
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts

    def values(self) -> List[Any]:
        """Every item's value, in order; raises :class:`SweepError` on failures."""
        failures = self.failures()
        if failures:
            raise SweepError(self)
        return [item.value for item in self.items]

    def partial_values(self) -> Dict[int, Any]:
        """index -> value for the items that succeeded."""
        return {item.index: item.value for item in self.items if item.ok}

    def failure_report(self) -> str:
        """Human-readable structured failure report.

        One summary line plus one block per failed item (status,
        attempts, rendered error); this is what :class:`SweepError`
        prints and what the CLI shows instead of a raw traceback.
        """
        failures = self.failures()
        counts = self.counts()
        summary = ", ".join(f"{count} {status}" for status, count in sorted(counts.items()))
        lines = [
            f"sweep failed on {len(failures)}/{len(self.items)} item(s) "
            f"[executor={self.executor}"
            + (", degraded-to-serial" if self.degraded else "")
            + f"]: {summary}"
        ]
        for item in failures:
            lines.append(
                f"  item {item.index}: {item.status} after {item.attempts} attempt(s)"
            )
            if item.error:
                for error_line in item.error.splitlines():
                    lines.append(f"    {error_line}")
        return "\n".join(lines)
