"""Per-item sweep checkpoints: the journal a killed sweep resumes from.

The PR 4 orchestrator already resumes at *experiment* granularity
(every completed artifact lands in the content-addressed result store
the moment it exists).  The journal extends that down to individual
sweep items: while a sweep runs, every completed item's value is
persisted -- atomically, one file per item, under a content-addressed
scope -- so a run killed at item ``k`` replays items ``0..k-1`` from
disk and computes only the missing ones.

A journal scope is a digest of the sweep's full provenance (the
orchestrator uses the experiment's result-store key, which folds in the
code fingerprint; plans derive an equivalent digest), so a stale
journal from different code or a different configuration can never be
replayed.  Corrupt entries -- a torn write from a hard kill, a damaged
disk -- are quarantined (renamed to ``*.corrupt``), counted, and
recomputed; they are evidence of a fault, never silently deleted and
never trusted.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
import pickle
import shutil
import tempfile
import threading
from typing import Any, Callable, Dict, Iterator, Optional

from repro.api import runtime_config

#: Filename suffix of one journaled item value (a pickle).
ENTRY_SUFFIX = ".item"

#: Suffix appended to quarantined (unreadable) entries.
CORRUPT_SUFFIX = ".corrupt"

_STATS = {"records": 0, "replays": 0, "quarantined": 0, "discards": 0}
_STATS_LOCK = threading.Lock()


def _count(counter: str, amount: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[counter] += amount


def journal_info() -> Dict[str, int]:
    """Process-wide journal counters (records/replays/quarantined)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_journal_info() -> None:
    """Zero the counters (tests)."""
    with _STATS_LOCK:
        for counter in _STATS:
            _STATS[counter] = 0


def count_replays(amount: int) -> None:
    """Record journal entries actually replayed into a sweep."""
    if amount:
        _count("replays", amount)


def item_key(worker: Callable, index: int, args: Any) -> str:
    """Content-address of one sweep item.

    Digests the worker's qualified name, the item's position, and the
    ``repr`` of its argument tuple -- all deterministic across
    processes (the arguments are frozen dataclasses, enums, and
    scalars) -- so a resumed run derives the same key for the same
    item and a changed argument derives a different one.
    """
    material = f"{worker.__module__}.{worker.__qualname__}|{index}|{args!r}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class SweepJournal:
    """One sweep's per-item checkpoint directory.

    Entries are written atomically (write-then-rename into
    ``<key>.item``), so a reader -- including a concurrent writer
    racing on the same scope -- never observes a half-written pickle;
    last writer wins with identical content, exactly like the result
    store.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def load(self) -> Dict[str, Any]:
        """Every replayable entry, keyed by item key.

        Unreadable entries are quarantined: renamed to ``*.corrupt``
        next to the journal (counted in :func:`journal_info`), so the
        evidence survives while the item is simply recomputed.
        """
        entries: Dict[str, Any] = {}
        if not os.path.isdir(self.directory):
            return entries
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(ENTRY_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as stream:
                    value = pickle.load(stream)
            except Exception:
                if quarantine_entry(path) is not None:
                    _count("quarantined")
                continue
            entries[name[: -len(ENTRY_SUFFIX)]] = value
        return entries

    def record(self, key: str, value: Any) -> bool:
        """Persist one completed item's value (atomic, best-effort)."""
        path = os.path.join(self.directory, f"{key}{ENTRY_SUFFIX}")
        temporary = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, temporary = tempfile.mkstemp(
                suffix=ENTRY_SUFFIX + ".tmp", dir=self.directory
            )
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(value, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        except (OSError, pickle.PicklingError):
            if temporary is not None:
                with contextlib.suppress(OSError):
                    os.unlink(temporary)
            return False  # The journal is an optimisation, never a failure.
        _count("records")
        return True

    def discard(self) -> None:
        """Drop the whole journal (its sweep completed and was stored)."""
        if os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)
            _count("discards")
            # Leave no empty ``journals/`` shell behind in the result
            # store; rmdir refuses (and is suppressed) while sibling
            # scopes still hold checkpoints.
            with contextlib.suppress(OSError):
                os.rmdir(os.path.dirname(self.directory))


def quarantine_entry(path: str) -> Optional[str]:
    """Rename an unreadable cache/journal file to ``*.corrupt``.

    Shared by the journal, the disk trace cache, and the result store:
    the damaged bytes are preserved as evidence (with a numeric suffix
    when a previous quarantine already claimed the name) and the caller
    bumps its own counter and recomputes.  Returns the quarantine path,
    or ``None`` when the rename itself failed (the entry is then left
    in place and simply treated as a miss).
    """
    destination = path + CORRUPT_SUFFIX
    attempt = 0
    while os.path.exists(destination):
        attempt += 1
        destination = f"{path}{CORRUPT_SUFFIX}.{attempt}"
    try:
        os.replace(path, destination)
    except OSError:
        return None
    return destination


def journal_for_scope(scope: Optional[str]) -> Optional[SweepJournal]:
    """The journal backing one sweep scope, or ``None``.

    Journals live under the result store's directory
    (``<result_cache_dir>/journals/<scope prefix>``): without a disk
    result store there is nothing durable to resume from, so sweeps
    simply run unjournaled.
    """
    if scope is None:
        return None
    base = runtime_config.current_result_cache_dir()
    if base is None:
        return None
    return SweepJournal(os.path.join(base, "journals", scope[:32]))


#: The ambient journal scope (set by the orchestrator around a runner,
#: so every ``Session.map`` a driver performs checkpoints under the
#: experiment's own result key).  A ContextVar: concurrent sessions in
#: separate threads keep separate scopes, forked workers inherit.
_SCOPE: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_journal_scope", default=None
)


def active_journal_scope() -> Optional[str]:
    """The ambient journal scope, or ``None``."""
    return _SCOPE.get()


@contextlib.contextmanager
def journal_scope(scope: Optional[str]) -> Iterator[None]:
    """Pin the ambient journal scope for a with-block."""
    token = _SCOPE.set(scope)
    try:
        yield
    finally:
        _SCOPE.reset(token)


def _register_stats_provider() -> None:
    """Expose the journal counters through the shared stats registry."""
    from repro.workloads.trace_cache import register_stats_provider

    register_stats_provider("journal", journal_info)


_register_stats_provider()
