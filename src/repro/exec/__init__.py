"""``repro.exec``: the fault-tolerant execution layer.

Everything that turns a sweep from "a bare ``Pool.map`` that dies with
its weakest worker" into supervised, resumable, testable execution:

:class:`SerialExecutor` / :class:`SupervisedProcessExecutor`
    Per-item dispatch with typed outcomes, retries with backoff,
    worker replacement, per-item timeouts, and graceful serial
    degradation.  Selected by ``RuntimeConfig.executor`` (``"serial"``,
    ``"processes"``, or a ``"module:attribute"`` entry point).
:class:`ItemResult` / :class:`SweepReport` / :class:`SweepError`
    Every item finishes as a typed outcome; failed sweeps raise a
    structured failure report carrying the partial results.
:class:`SweepJournal`
    Per-item checkpoints under a content-addressed scope, so a killed
    sweep resumes replaying only the missing items.
:class:`FaultPlan`
    Deterministic fault injection (worker kills, transient exceptions,
    hangs, cache truncation, stale leases, double claims) at exact
    item indices, so every robustness claim above is asserted by tests
    rather than trusted.
:class:`QueueExecutor`
    The durable filesystem work queue (``executor = "queue"``): items
    claimed via heartbeat leases by any number of cooperating worker
    processes -- local or started on other machines with
    ``repro-frontend worker`` -- with stale-lease reclaim,
    first-writer-wins completion, and poison-item quarantine.
"""

from repro.exec.executors import (
    ExecutionSettings,
    ExecutionSettingsError,
    Executor,
    SerialExecutor,
    SupervisedProcessExecutor,
    execute_items,
    executor_names,
    register_executor,
    resolve_executor,
)
from repro.exec.faults import (
    Fault,
    FaultPlan,
    InjectedFault,
    SimulatedWorkerDeath,
)
from repro.exec.journal import (
    SweepJournal,
    active_journal_scope,
    item_key,
    journal_for_scope,
    journal_info,
    journal_scope,
    quarantine_entry,
)
from repro.exec.queue import (
    QueueExecutor,
    QueueWorker,
    enqueue_campaign,
    open_campaign,
    queue_info,
    serve_queue,
)
from repro.exec.results import (
    ITEM_STATUSES,
    ItemResult,
    SweepError,
    SweepReport,
)

__all__ = [
    "ExecutionSettings",
    "ExecutionSettingsError",
    "Executor",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "ITEM_STATUSES",
    "ItemResult",
    "QueueExecutor",
    "QueueWorker",
    "SerialExecutor",
    "SimulatedWorkerDeath",
    "SupervisedProcessExecutor",
    "SweepError",
    "SweepJournal",
    "SweepReport",
    "active_journal_scope",
    "enqueue_campaign",
    "execute_items",
    "executor_names",
    "item_key",
    "journal_for_scope",
    "journal_info",
    "journal_scope",
    "open_campaign",
    "quarantine_entry",
    "queue_info",
    "register_executor",
    "resolve_executor",
    "serve_queue",
]
