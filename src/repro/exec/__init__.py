"""``repro.exec``: the fault-tolerant execution layer.

Everything that turns a sweep from "a bare ``Pool.map`` that dies with
its weakest worker" into supervised, resumable, testable execution:

:class:`SerialExecutor` / :class:`SupervisedProcessExecutor`
    Per-item dispatch with typed outcomes, retries with backoff,
    worker replacement, per-item timeouts, and graceful serial
    degradation.  Selected by ``RuntimeConfig.executor`` (``"serial"``,
    ``"processes"``, or a ``"module:attribute"`` entry point).
:class:`ItemResult` / :class:`SweepReport` / :class:`SweepError`
    Every item finishes as a typed outcome; failed sweeps raise a
    structured failure report carrying the partial results.
:class:`SweepJournal`
    Per-item checkpoints under a content-addressed scope, so a killed
    sweep resumes replaying only the missing items.
:class:`FaultPlan`
    Deterministic fault injection (worker kills, transient exceptions,
    hangs, cache truncation) at exact item indices, so every
    robustness claim above is asserted by tests rather than trusted.
"""

from repro.exec.executors import (
    ExecutionSettings,
    Executor,
    SerialExecutor,
    SupervisedProcessExecutor,
    execute_items,
    executor_names,
    register_executor,
    resolve_executor,
)
from repro.exec.faults import (
    Fault,
    FaultPlan,
    InjectedFault,
    SimulatedWorkerDeath,
)
from repro.exec.journal import (
    SweepJournal,
    active_journal_scope,
    item_key,
    journal_for_scope,
    journal_info,
    journal_scope,
    quarantine_entry,
)
from repro.exec.results import (
    ITEM_STATUSES,
    ItemResult,
    SweepError,
    SweepReport,
)

__all__ = [
    "ExecutionSettings",
    "Executor",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "ITEM_STATUSES",
    "ItemResult",
    "SerialExecutor",
    "SimulatedWorkerDeath",
    "SupervisedProcessExecutor",
    "SweepError",
    "SweepJournal",
    "SweepReport",
    "active_journal_scope",
    "execute_items",
    "executor_names",
    "item_key",
    "journal_for_scope",
    "journal_info",
    "journal_scope",
    "quarantine_entry",
    "register_executor",
    "resolve_executor",
]
