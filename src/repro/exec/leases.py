"""Filesystem leases: how queue workers claim items and prove liveness.

A lease is one small JSON file next to the item it protects.  The
primitives here make three guarantees on any POSIX filesystem (local or
shared) without assuming comparable clocks across machines:

* **Exclusive claims** -- :func:`acquire` creates the lease file with
  ``O_CREAT | O_EXCL``, so exactly one worker wins a contested item.
* **Liveness** -- the owner renews the lease on a heartbeat interval
  (:func:`renew`), bumping a monotonic sequence number and a wall-clock
  timestamp.  Renewal re-reads the file first and refuses to clobber a
  lease it no longer owns (a reclaimed lease stays reclaimed).
* **Recovery** -- a :class:`Reaper` watches leases and reclaims an item
  (:func:`reclaim`) when its owner is provably or presumably dead:
  the owner's pid is gone (same-host fast path), the heartbeat
  timestamp is older than the TTL, or -- clock-skew-proof -- the
  sequence number has not moved for a TTL on the *reaper's own*
  monotonic clock.  Reclaim renames the lease to a unique tombstone
  first, so concurrent reapers cannot both win.

Corrupt lease files (a torn write from a hard kill) are quarantined as
``*.corrupt`` evidence and treated as immediately reclaimable: a lease
that cannot prove liveness does not grant one.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from typing import Any, Dict, Optional

from repro.exec.journal import quarantine_entry

_STATS = {
    "acquired": 0,
    "renewed": 0,
    "released": 0,
    "reclaimed": 0,
    "lost": 0,
    "corrupt": 0,
}
_STATS_LOCK = threading.Lock()


def _count(counter: str, amount: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[counter] += amount


def lease_info() -> Dict[str, int]:
    """Process-wide lease counters (acquired/renewed/reclaimed/...)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_lease_info() -> None:
    """Zero the counters (tests)."""
    with _STATS_LOCK:
        for counter in _STATS:
            _STATS[counter] = 0


def new_owner_id() -> str:
    """A globally unique lease owner: ``host:pid:nonce``.

    The host and pid feed the same-host dead-owner fast path; the nonce
    keeps two workers in one recycled pid distinct.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def owner_pid(owner: str) -> Optional[int]:
    """The pid embedded in an owner id, or ``None`` if unparsable."""
    parts = owner.rsplit(":", 2)
    if len(parts) != 3:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


def owner_host(owner: str) -> Optional[str]:
    """The hostname embedded in an owner id, or ``None`` if unparsable."""
    parts = owner.rsplit(":", 2)
    if len(parts) != 3:
        return None
    return parts[0]


def _lease_document(owner: str, seq: int, ttl: float) -> bytes:
    return json.dumps(
        {"owner": owner, "seq": seq, "ts": time.time(), "ttl": ttl}
    ).encode("utf-8")


def acquire(path: str, owner: str, ttl: float) -> bool:
    """Claim a lease: atomic ``O_EXCL`` create.  False when contested."""
    try:
        descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        return False
    except OSError:
        return False
    try:
        with os.fdopen(descriptor, "wb") as stream:
            stream.write(_lease_document(owner, 0, ttl))
    except OSError:
        return False
    _count("acquired")
    return True


def read_lease(path: str) -> Optional[Dict[str, Any]]:
    """The lease document, or ``None`` when absent.

    A present-but-unreadable lease (torn write) is quarantined as
    ``*.corrupt`` evidence and reported as a sentinel document with
    ``seq`` and ``ts`` of 0 -- i.e. immediately stale -- because a
    lease that cannot prove liveness does not grant one.
    """
    try:
        with open(path, "rb") as stream:
            raw = stream.read()
    except FileNotFoundError:
        return None
    except OSError:
        return None
    try:
        document = json.loads(raw.decode("utf-8"))
        if not isinstance(document, dict) or "owner" not in document:
            raise ValueError("not a lease document")
    except ValueError:
        if quarantine_entry(path) is not None:
            _count("corrupt")
        return {"owner": "", "seq": 0, "ts": 0.0, "ttl": 0.0, "corrupt": True}
    return document


def renew(path: str, owner: str, seq: int, ttl: float) -> bool:
    """Heartbeat: bump the lease's sequence number and timestamp.

    Re-reads the lease first and refuses to write unless this owner
    still holds it -- a zombie worker whose lease was reclaimed must
    not resurrect the claim.  Returns whether the lease is still held.
    """
    current = read_lease(path)
    if current is None or current.get("owner") != owner:
        _count("lost")
        return False
    temporary = f"{path}.{owner.rsplit(':', 1)[-1]}.hb"
    try:
        with open(temporary, "wb") as stream:
            stream.write(_lease_document(owner, seq, ttl))
        os.replace(temporary, path)
    except OSError:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        return False
    _count("renewed")
    return True


def release(path: str, owner: str) -> bool:
    """Drop a lease this owner holds (no-op when already reclaimed)."""
    current = read_lease(path)
    if current is None or current.get("owner") != owner:
        return False
    try:
        os.unlink(path)
    except OSError:
        return False
    _count("released")
    return True


def reclaim(path: str, reclaimer: str) -> Optional[Dict[str, Any]]:
    """Take a stale lease away from its (dead) owner.

    Atomic against concurrent reapers: the lease is renamed to a
    tombstone unique to this reclaimer first -- only one rename can
    win -- then read and removed.  Returns the dead lease's document,
    or ``None`` when another reaper (or a surprise heartbeat's
    ``os.replace``) got there first.
    """
    tombstone = f"{path}.{reclaimer.rsplit(':', 1)[-1]}.reclaim"
    try:
        os.rename(path, tombstone)
    except OSError:
        return None
    document = read_lease(tombstone)
    try:
        os.unlink(tombstone)
    except OSError:
        pass
    _count("reclaimed")
    return document if document is not None else {"owner": "", "seq": 0}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


class Reaper:
    """Staleness detector for the leases of one campaign.

    Stateful on purpose: wall-clock timestamps from another machine may
    be skewed, so besides the timestamp check the reaper tracks, per
    lease, when *it* last saw the sequence number move (its own
    monotonic clock).  A lease is stale when any of these holds:

    * its owner's pid is dead and the owner is on this host (fast
      path -- no TTL wait after a local SIGKILL),
    * its heartbeat timestamp is more than a TTL in the past,
    * its sequence number has not moved for a TTL of observation.
    """

    def __init__(self, ttl: float) -> None:
        self.ttl = float(ttl)
        self._host = socket.gethostname()
        #: path -> (last seen seq, monotonic time it was first seen).
        self._observations: Dict[str, Any] = {}

    def forget(self, path: str) -> None:
        """Drop the observation history of a resolved lease."""
        self._observations.pop(path, None)

    def is_stale(self, path: str, lease: Dict[str, Any]) -> bool:
        """Whether a lease's owner is provably or presumably dead."""
        if lease.get("corrupt"):
            return True
        owner = str(lease.get("owner", ""))
        pid = owner_pid(owner)
        if pid is not None and owner_host(owner) == self._host:
            if not _pid_alive(pid):
                return True
        timestamp = float(lease.get("ts", 0) or 0)
        if timestamp and time.time() - timestamp > self.ttl:
            return True
        seq = lease.get("seq", 0)
        now = time.monotonic()
        seen = self._observations.get(path)
        if seen is None or seen[0] != seq:
            self._observations[path] = (seq, now)
            return not timestamp  # A ts of 0 is stale on sight.
        return now - seen[1] > self.ttl


def _register_stats_provider() -> None:
    """Expose the lease counters through the shared stats registry."""
    from repro.workloads.trace_cache import register_stats_provider

    register_stats_provider("leases", lease_info)


_register_stats_provider()
