"""Request resolution: URL + query params -> the orchestrator's key.

A request names an experiment (``/experiment/fig5``) or a preset
exploration (``/explore/smoke``); its semantic parameters (today the
instruction budget) resolve into exactly the content address the
orchestrator uses (:func:`repro.results.orchestrator.experiment_key`),
so a store populated by ``repro-frontend all`` -- or by a queue worker
draining this service's own misses -- serves every warm request with
zero recomputation.

Each request derives its own frozen :class:`~repro.api.runtime_config.
RuntimeConfig` from the server's pinned startup snapshot, so two
concurrent requests with different instruction budgets resolve and
load under isolated configs (ContextVar activation is per-task).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.api.runtime_config import RuntimeConfig
from repro.serve.wire import (
    HttpError,
    float_param,
    int_param,
    negotiate_format,
    single_param,
)

#: Upper bound of ``?wait=`` (seconds a request may block on a miss).
MAX_WAIT_SECONDS = 120.0

#: Upper bound of ``?instructions=`` accepted over the wire.
MAX_INSTRUCTIONS = 2_000_000_000


@dataclass(frozen=True)
class ResolvedRequest:
    """One experiment request, fully resolved to its store address."""

    experiment: str
    instructions: int
    key: str
    #: Stored frame to serve (``None``: the artifact's primary frame).
    frame: Optional[str]
    format: str
    wait: float
    config: RuntimeConfig


def resolve_experiment(
    name: str,
    params: Mapping[str, List[str]],
    base_config: RuntimeConfig,
    accept: Optional[str] = None,
) -> ResolvedRequest:
    """Resolve ``/experiment/<name>?...`` against the registry."""
    from repro.results.orchestrator import experiment_key, registry_names

    try:
        from repro.results.orchestrator import get_spec

        spec = get_spec(name)
    except KeyError:
        known = ", ".join(sorted(registry_names()))
        raise HttpError(
            404, "unknown-experiment", f"unknown experiment {name!r}; expected one of {known}"
        )
    instructions = int_param(params, "instructions", base_config.instructions)
    if instructions > MAX_INSTRUCTIONS:
        raise HttpError(
            400,
            "bad-parameter",
            f"parameter 'instructions' must be <= {MAX_INSTRUCTIONS}, "
            f"got {instructions}",
        )
    config = (
        base_config
        if instructions == base_config.instructions
        else base_config.replace(instructions=instructions)
    )
    return ResolvedRequest(
        experiment=name,
        instructions=instructions,
        key=experiment_key(spec, instructions),
        frame=single_param(params, "frame"),
        format=negotiate_format(params, accept),
        wait=float_param(params, "wait", 0.0, maximum=MAX_WAIT_SECONDS),
        config=config,
    )


def resolve_explore(
    preset: str,
    params: Mapping[str, List[str]],
    base_config: RuntimeConfig,
    accept: Optional[str] = None,
) -> ResolvedRequest:
    """Resolve ``/explore/<preset>?...`` to its registered experiment."""
    from repro.experiments.explore_presets import preset_experiment_name

    try:
        name = preset_experiment_name(preset)
    except KeyError as error:
        raise HttpError(404, "unknown-preset", str(error).strip("'\""))
    return resolve_experiment(name, params, base_config, accept)
