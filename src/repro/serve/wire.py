"""Wire encoding of the results service: frames in, HTTP bodies out.

Hit responses carry a :class:`~repro.api.frame.ResultFrame` as JSON
(``{"experiment", "key", "frame", "columns", "rows"}``) or CSV,
negotiated from ``?format=`` (which wins) or the ``Accept`` header.
Both encodings are deterministic functions of the stored artifact, so
a response served through ``/job/<id>`` after a cold miss is
byte-identical to the warm ``/experiment/...`` response for the same
request -- the CI byte-diff relies on this.

Slicing (``?columns=``, ``?where=``, and the ``?workload=`` shorthand)
happens here, on the reconstructed frame, so every experiment's payload
supports it with no per-experiment glue.  Malformed parameters raise
:class:`HttpError` with a machine-readable ``code``; the server renders
those as typed JSON error bodies.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, unquote

from repro.api.frame import ResultFrame

JSON_TYPE = "application/json"
CSV_TYPE = "text/csv; charset=utf-8"

#: ``?format=`` values and the Accept substrings that select them.
_FORMATS = ("json", "csv")


class HttpError(Exception):
    """A typed HTTP failure: status plus a machine-readable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def body(self) -> bytes:
        return dump_json({"error": {"code": self.code, "message": self.message}})


def dump_json(value: Any) -> bytes:
    """The service's one JSON encoding (deterministic, compact)."""
    return (
        json.dumps(value, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def parse_query(raw: str) -> Dict[str, List[str]]:
    """Decode a raw query string into a name -> values mapping."""
    try:
        return parse_qs(raw, keep_blank_values=True, strict_parsing=False)
    except ValueError as error:  # pragma: no cover - parse_qs is lenient
        raise HttpError(400, "bad-query", f"malformed query string: {error}")


def single_param(params: Mapping[str, List[str]], name: str) -> Optional[str]:
    """The single value of a parameter, or ``None`` when absent."""
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise HttpError(
            400, "bad-parameter", f"parameter {name!r} given more than once"
        )
    return values[0]


def int_param(
    params: Mapping[str, List[str]],
    name: str,
    default: int,
    minimum: int = 1,
) -> int:
    """A positive-integer parameter with a typed 400 on garbage."""
    raw = single_param(params, name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise HttpError(
            400, "bad-parameter", f"parameter {name!r} must be an integer, got {raw!r}"
        )
    if value < minimum:
        raise HttpError(
            400, "bad-parameter", f"parameter {name!r} must be >= {minimum}, got {value}"
        )
    return value


def float_param(
    params: Mapping[str, List[str]],
    name: str,
    default: float,
    maximum: Optional[float] = None,
) -> float:
    """A non-negative float parameter (clamped to ``maximum``)."""
    raw = single_param(params, name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise HttpError(
            400, "bad-parameter", f"parameter {name!r} must be a number, got {raw!r}"
        )
    if value < 0:
        raise HttpError(
            400, "bad-parameter", f"parameter {name!r} must be >= 0, got {value}"
        )
    if maximum is not None:
        value = min(value, maximum)
    return value


def negotiate_format(
    params: Mapping[str, List[str]], accept: Optional[str]
) -> str:
    """``json`` or ``csv``: ``?format=`` wins, then the Accept header."""
    explicit = single_param(params, "format")
    if explicit is not None:
        if explicit not in _FORMATS:
            raise HttpError(
                400,
                "bad-parameter",
                f"parameter 'format' must be one of {', '.join(_FORMATS)}, "
                f"got {explicit!r}",
            )
        return explicit
    if accept and "text/csv" in accept and JSON_TYPE not in accept:
        return "csv"
    return "json"


def _parse_where(params: Mapping[str, List[str]]) -> List[Tuple[str, str]]:
    """``where=column:value`` filters plus the ``workload=`` shorthand."""
    filters: List[Tuple[str, str]] = []
    for raw in params.get("where", []):
        column, separator, value = raw.partition(":")
        if not separator or not column:
            raise HttpError(
                400,
                "bad-parameter",
                f"parameter 'where' must look like column:value, got {raw!r}",
            )
        filters.append((unquote(column), unquote(value)))
    workload = single_param(params, "workload")
    if workload is not None:
        filters.append(("workload", workload))
    return filters


def slice_frame(frame: ResultFrame, params: Mapping[str, List[str]]) -> ResultFrame:
    """Apply ``where``/``workload`` filters and a ``columns`` projection.

    Filter values compare against the string form of each cell, so
    ``where=btb_entries:256`` matches the integer cell ``256`` without
    the caller knowing column types.  Unknown columns are typed 400s.
    """
    filters = _parse_where(params)
    for column, value in filters:
        if column not in frame.columns:
            raise HttpError(
                400,
                "unknown-column",
                f"no column {column!r}; frame has {', '.join(frame.columns)}",
            )
        position = frame.columns.index(column)
        frame = ResultFrame(
            columns=frame.columns,
            data=tuple(
                row for row in frame.data if str(row[position]) == value
            ),
            title=frame.title,
        )
    raw_columns = single_param(params, "columns")
    if raw_columns is not None:
        requested = [name.strip() for name in raw_columns.split(",") if name.strip()]
        if not requested:
            raise HttpError(
                400, "bad-parameter", "parameter 'columns' selects no columns"
            )
        unknown = [name for name in requested if name not in frame.columns]
        if unknown:
            raise HttpError(
                400,
                "unknown-column",
                f"no column(s) {', '.join(unknown)}; "
                f"frame has {', '.join(frame.columns)}",
            )
        positions = [frame.columns.index(name) for name in requested]
        frame = ResultFrame(
            columns=tuple(requested),
            data=tuple(
                tuple(row[position] for position in positions)
                for row in frame.data
            ),
            title=frame.title,
        )
    return frame


def artifact_frame(artifact: Mapping[str, Any], name: Optional[str]) -> Tuple[str, ResultFrame]:
    """One stored payload frame of an artifact (default: its primary)."""
    frames = artifact.get("frames") or {}
    if name is None:
        name = artifact.get("primary")
    if name not in frames:
        known = ", ".join(sorted(frames)) or "none"
        raise HttpError(
            400,
            "unknown-frame",
            f"artifact has no frame {name!r} (stored: {known})",
        )
    return str(name), ResultFrame.from_payload(frames[name])


def frame_body(
    experiment: str,
    key: str,
    frame_name: str,
    frame: ResultFrame,
    format: str,
) -> Tuple[str, bytes]:
    """Encode one (possibly sliced) frame as a response body.

    Returns ``(content_type, body)``.  The JSON layout is the frame's
    columnar form plus its provenance -- enough for a client to verify
    it received exactly the store entry it asked for.
    """
    if format == "csv":
        return CSV_TYPE, frame.to_csv().encode("utf-8")
    return JSON_TYPE, dump_json(
        {
            "experiment": experiment,
            "key": key,
            "frame": frame_name,
            "columns": list(frame.columns),
            "rows": [list(row) for row in frame.data],
        }
    )
