"""Miss handling: the job registry and the importable queue worker.

A store miss becomes one single-item campaign on the durable work
queue (:func:`repro.exec.queue.enqueue_item`), claimed at interactive
priority ahead of default-priority batch campaigns sharing the
directory.  The worker reference stored in the campaign manifest is
:func:`experiment_job_worker` -- a plain module-level function -- so
any external ``repro-frontend worker`` process can resolve and drain
it; the worker runs the experiment through the orchestrator, which
publishes the artifact into the shared content-addressed result store,
where pollers of this service (or any other process) find it.

The registry itself is in-process bookkeeping only: job identity is
derived from the result key, completion is judged solely by the store,
and re-submitting an already-known miss is a no-op.  A restarted
server therefore forgets job *ids* but never results.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.api.runtime_config import RuntimeConfig
from repro.serve.resolve import ResolvedRequest

#: Length of the job id (a result-key prefix: collision-safe in
#: practice and directly correlatable with server logs and the store).
JOB_ID_LENGTH = 16


def experiment_job_worker(args) -> str:
    """Queue worker: compute one experiment, publish it to the store.

    ``args`` is ``(experiment_name, instructions)``.  Runs through the
    orchestrator, so the artifact lands in the shared result store
    under exactly the key the service resolved for the request; the
    small returned key is what the queue publishes as the item result.
    """
    name, instructions = args
    from repro.results.orchestrator import run_experiments

    report = run_experiments([name], instructions=int(instructions))
    return report.outcome(name).key


@dataclass
class Job:
    """One enqueued miss, addressable at ``/job/<id>``."""

    id: str
    experiment: str
    instructions: int
    key: str
    config: RuntimeConfig
    campaign_root: str
    item: str
    created: float

    def describe(self) -> Dict[str, Any]:
        return {
            "job": self.id,
            "experiment": self.experiment,
            "instructions": self.instructions,
            "key": self.key,
            "poll": f"/job/{self.id}",
        }


class JobRegistry:
    """In-process index of enqueued misses, keyed by result-key prefix."""

    def __init__(self, queue_dir: str) -> None:
        self._queue_dir = queue_dir
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()

    @property
    def queue_dir(self) -> str:
        return self._queue_dir

    def submit(self, resolved: ResolvedRequest) -> Job:
        """Enqueue a miss (idempotent: same key -> same job)."""
        job_id = resolved.key[:JOB_ID_LENGTH]
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
        from repro.exec.executors import ExecutionSettings
        from repro.exec.queue import INTERACTIVE_PRIORITY, enqueue_item

        settings = ExecutionSettings(
            retries=resolved.config.retries,
            item_timeout=resolved.config.item_timeout,
            retry_delay=resolved.config.retry_delay,
            queue_dir=self._queue_dir,
            lease_ttl=resolved.config.lease_ttl,
            heartbeat_interval=resolved.config.heartbeat_interval,
        )
        campaign, item = enqueue_item(
            experiment_job_worker,
            (resolved.experiment, resolved.instructions),
            settings,
            self._queue_dir,
            priority=INTERACTIVE_PRIORITY,
        )
        job = Job(
            id=job_id,
            experiment=resolved.experiment,
            instructions=resolved.instructions,
            key=resolved.key,
            config=resolved.config,
            campaign_root=campaign.root,
            item=item,
            created=time.time(),
        )
        with self._lock:
            return self._jobs.setdefault(job_id, job)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
