"""The always-on results service: asyncio HTTP/JSON over store + queue.

A small stdlib-only HTTP server (``asyncio`` streams, GET only) that
fronts the content-addressed result store and the durable work queue:

``GET /experiment/<name>``
    Resolve the request to the orchestrator's result key and serve the
    stored artifact's frames (JSON or CSV; ``?columns=``/``?where=``/
    ``?workload=`` slicing).  On a miss, enqueue the experiment as an
    interactive-priority queue item and answer ``202`` with a
    ``/job/<id>`` polling URL; ``?wait=SECONDS`` blocks up to the
    deadline for a cooperating worker to drain it first.
``GET /explore/<preset>``
    The same, addressed by grid-preset name (``frontend``/``smoke``/
    ``cmp``) through the registered ``explore-*`` experiments.
``GET /job/<id>``
    Poll an enqueued miss; once the artifact appears in the shared
    store the response is byte-identical to the warm
    ``/experiment/...`` response for the same parameters.
``GET /healthz`` and ``GET /stats``
    Liveness, the registered cache/store/queue counters, and per-route
    request/hit/miss/error/latency counters.

One :class:`~repro.api.runtime_config.RuntimeConfig` snapshot is
pinned at startup; every request derives (and activates) its own
frozen config, so concurrent requests with different instruction
budgets never cross-contaminate -- activation is ContextVar-based and
asyncio gives each connection task its own context.
"""

from __future__ import annotations

import asyncio
import contextlib
import statistics
import sys
import threading
import time
from collections import deque
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.api import runtime_config as rc
from repro.serve.jobs import JobRegistry
from repro.serve.resolve import ResolvedRequest, resolve_experiment, resolve_explore
from repro.serve.wire import (
    JSON_TYPE,
    HttpError,
    artifact_frame,
    dump_json,
    frame_body,
    parse_query,
    slice_frame,
)

#: Interval between store polls while a request blocks on ``?wait=``.
POLL_INTERVAL_SECONDS = 0.05

#: Latency samples kept per route (enough for a stable p50).
LATENCY_SAMPLES = 512

#: Maximum request-line plus header bytes read per request.
MAX_HEADER_BYTES = 32 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class RouteStats:
    """Request/hit/miss/error counters and latency samples of one route."""

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.latency_ns: deque = deque(maxlen=LATENCY_SAMPLES)

    def describe(self) -> Dict[str, Any]:
        samples = list(self.latency_ns)
        described: Dict[str, Any] = {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
        }
        if samples:
            described["p50_ms"] = round(statistics.median(samples) / 1e6, 4)
            described["mean_ms"] = round(statistics.fmean(samples) / 1e6, 4)
            described["max_ms"] = round(max(samples) / 1e6, 4)
        return described


class ResultsServer:
    """The results service (construct, :meth:`start`, :meth:`stop`)."""

    def __init__(
        self,
        config: Optional[rc.RuntimeConfig] = None,
        queue_dir: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        self._config = config if config is not None else rc.RuntimeConfig.from_environment()
        self._host = host if host is not None else self._config.serve_host
        self._port = port if port is not None else self._config.serve_port
        queue_dir = queue_dir if queue_dir is not None else self._config.queue_dir
        self._jobs = JobRegistry(queue_dir) if queue_dir else None
        self._stats: Dict[str, RouteStats] = {}
        self._stats_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.time()

    # -- lifecycle ---------------------------------------------------

    @property
    def config(self) -> rc.RuntimeConfig:
        """The pinned startup config snapshot."""
        return self._config

    @property
    def port(self) -> int:
        """The bound TCP port (the OS choice under ``port=0``)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._port,
            limit=MAX_HEADER_BYTES,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- counters ----------------------------------------------------

    def _route_stats(self, route: str) -> RouteStats:
        with self._stats_lock:
            if route not in self._stats:
                self._stats[route] = RouteStats()
            return self._stats[route]

    def stats(self) -> Dict[str, Any]:
        """Per-route serve counters plus every registered cache's."""
        from repro.workloads.trace_cache import all_cache_stats

        with self._stats_lock:
            routes = {name: stats.describe() for name, stats in self._stats.items()}
        return {
            "serve": {
                "uptime_s": round(time.time() - self._started, 3),
                "jobs": len(self._jobs) if self._jobs is not None else 0,
                "routes": routes,
            },
            "caches": all_cache_stats(),
        }

    # -- the HTTP layer ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._handle_request(reader)
            await self._write_response(writer, status, content_type, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown mid-request: close the transport quietly.
            pass
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, bytes]:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return 400, JSON_TYPE, HttpError(400, "bad-request", "oversized request").body()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return 400, JSON_TYPE, HttpError(400, "bad-request", "malformed request line").body()
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                return 400, JSON_TYPE, HttpError(400, "bad-request", "oversized headers").body()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        if method.upper() != "GET":
            error = HttpError(405, "method-not-allowed", f"{method} not supported (GET only)")
            return error.status, JSON_TYPE, error.body()
        return await self._dispatch(target, headers)

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------

    async def _dispatch(
        self, target: str, headers: Dict[str, str]
    ) -> Tuple[int, str, bytes]:
        path, _, raw_query = target.partition("?")
        segments = [segment for segment in path.split("/") if segment]
        route, handler = self._route(segments)
        stats = self._route_stats(route)
        stats.requests += 1
        started = time.perf_counter_ns()
        try:
            params = parse_query(raw_query)
            status, content_type, body = await handler(segments, params, headers)
        except HttpError as error:
            stats.errors += 1
            status, content_type, body = error.status, JSON_TYPE, error.body()
        except Exception as error:  # noqa: BLE001 - one request must not kill the server
            stats.errors += 1
            fallback = HttpError(500, "internal-error", f"{type(error).__name__}: {error}")
            status, content_type, body = fallback.status, JSON_TYPE, fallback.body()
        finally:
            stats.latency_ns.append(time.perf_counter_ns() - started)
        if status == 200:
            stats.hits += 1
        elif status == 202:
            stats.misses += 1
        return status, content_type, body

    def _route(
        self, segments: List[str]
    ) -> Tuple[str, Callable[..., Awaitable[Tuple[int, str, bytes]]]]:
        head = segments[0] if segments else ""
        if head == "healthz" and len(segments) == 1:
            return "healthz", self._handle_healthz
        if head == "stats" and len(segments) == 1:
            return "stats", self._handle_stats
        if head == "experiment" and len(segments) == 2:
            return "experiment", self._handle_experiment
        if head == "explore" and len(segments) == 2:
            return "explore", self._handle_explore
        if head == "job" and len(segments) == 2:
            return "job", self._handle_job
        return "other", self._handle_unknown

    # -- handlers ----------------------------------------------------

    async def _handle_unknown(self, segments, params, headers):
        raise HttpError(
            404,
            "unknown-route",
            "expected /experiment/<name>, /explore/<preset>, /job/<id>, "
            "/healthz, or /stats",
        )

    async def _handle_healthz(self, segments, params, headers):
        from repro.results.orchestrator import registry_names

        body = dump_json(
            {
                "status": "ok",
                "uptime_s": round(time.time() - self._started, 3),
                "experiments": len(registry_names()),
                "queue_dir": self._jobs.queue_dir if self._jobs is not None else None,
            }
        )
        return 200, JSON_TYPE, body

    async def _handle_stats(self, segments, params, headers):
        return 200, JSON_TYPE, dump_json(self.stats())

    async def _handle_experiment(self, segments, params, headers):
        resolved = resolve_experiment(
            segments[1], params, self._config, headers.get("accept")
        )
        return await self._serve_resolved(resolved, params)

    async def _handle_explore(self, segments, params, headers):
        resolved = resolve_explore(
            segments[1], params, self._config, headers.get("accept")
        )
        return await self._serve_resolved(resolved, params)

    async def _serve_resolved(
        self, resolved: ResolvedRequest, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes]:
        artifact = self._load(resolved)
        if artifact is not None:
            return self._hit_response(resolved, params, artifact)
        if self._jobs is None:
            raise HttpError(
                503,
                "queue-unavailable",
                "result not stored and the service has no queue directory "
                "to enqueue it on (start with --queue-dir)",
            )
        job = self._jobs.submit(resolved)
        if resolved.wait > 0:
            artifact = await self._await_store(resolved, resolved.wait)
            if artifact is not None:
                return self._hit_response(resolved, params, artifact)
        body = dict(job.describe())
        body["status"] = "pending"
        return 202, JSON_TYPE, dump_json(body)

    async def _handle_job(self, segments, params, headers):
        if self._jobs is None:
            raise HttpError(404, "unknown-job", "this service has no job queue")
        job = self._jobs.get(segments[1])
        if job is None:
            raise HttpError(
                404,
                "unknown-job",
                f"unknown job {segments[1]!r} (job ids do not survive a "
                "service restart; re-request the experiment)",
            )
        resolved = resolve_experiment(
            job.experiment,
            {**params, "instructions": [str(job.instructions)]},
            self._config,
            headers.get("accept"),
        )
        artifact = self._load(resolved)
        if artifact is None and resolved.wait > 0:
            artifact = await self._await_store(resolved, resolved.wait)
        if artifact is None:
            body = dict(job.describe())
            body["status"] = "pending"
            return 202, JSON_TYPE, dump_json(body)
        return self._hit_response(resolved, params, artifact)

    # -- store access ------------------------------------------------

    def _load(self, resolved: ResolvedRequest) -> Optional[Dict[str, Any]]:
        from repro.results.store import load_result

        with rc.activated(resolved.config):
            return load_result(resolved.key, resolved.experiment)

    async def _await_store(
        self, resolved: ResolvedRequest, wait: float
    ) -> Optional[Dict[str, Any]]:
        deadline = time.monotonic() + wait
        while True:
            artifact = self._load(resolved)
            if artifact is not None:
                return artifact
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            await asyncio.sleep(min(POLL_INTERVAL_SECONDS, remaining))

    def _hit_response(
        self,
        resolved: ResolvedRequest,
        params: Dict[str, List[str]],
        artifact: Dict[str, Any],
    ) -> Tuple[int, str, bytes]:
        frame_name, frame = artifact_frame(artifact, resolved.frame)
        frame = slice_frame(frame, params)
        content_type, body = frame_body(
            resolved.experiment, resolved.key, frame_name, frame, resolved.format
        )
        return 200, content_type, body


async def _run_server(server: ResultsServer) -> None:
    await server.start()
    print(f"serving results on {server.url}", file=sys.stderr)
    await server.serve_forever()


def run_server(server: ResultsServer) -> int:
    """Run a server until interrupted (the CLI entry point)."""
    try:
        asyncio.run(_run_server(server))
    except KeyboardInterrupt:
        print("results service stopped", file=sys.stderr)
    return 0


@contextlib.contextmanager
def background_server(
    config: Optional[rc.RuntimeConfig] = None,
    queue_dir: Optional[str] = None,
    host: Optional[str] = None,
    port: int = 0,
):
    """Run a :class:`ResultsServer` on a daemon thread (tests, scripts).

    Yields the started server (its ``url`` reflects the bound port);
    the server and its event loop are torn down on exit.
    """
    server = ResultsServer(config=config, queue_dir=queue_dir, host=host, port=port)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    async def _serve() -> None:
        await server.start()
        ready.set()
        assert server._server is not None
        await server._server.serve_forever()

    def _main() -> None:
        asyncio.set_event_loop(loop)
        with contextlib.suppress(asyncio.CancelledError):
            loop.run_until_complete(_serve())
        loop.close()

    thread = threading.Thread(target=_main, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=10):
        raise RuntimeError("results service failed to start within 10s")
    try:
        yield server
    finally:
        def _shutdown() -> None:
            if server._server is not None:
                server._server.close()
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_shutdown)
        thread.join(timeout=10)
