"""The always-on results service (``repro-frontend serve``).

An asyncio HTTP/JSON API over the content-addressed result store and
the durable work queue: warm requests are served straight from the
store as :class:`~repro.api.frame.ResultFrame` payloads, misses are
enqueued for external ``repro-frontend worker`` processes and polled
at ``/job/<id>``.  See :mod:`repro.serve.server` for the route
reference.
"""

from repro.serve.jobs import JobRegistry, experiment_job_worker
from repro.serve.resolve import ResolvedRequest, resolve_experiment, resolve_explore
from repro.serve.server import ResultsServer, background_server, run_server
from repro.serve.wire import HttpError

__all__ = [
    "HttpError",
    "JobRegistry",
    "ResolvedRequest",
    "ResultsServer",
    "background_server",
    "experiment_job_worker",
    "resolve_experiment",
    "resolve_explore",
    "run_server",
]
