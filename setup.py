"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``python setup.py develop`` works on offline machines where pip's
PEP 517 editable-install path is unavailable (it requires the ``wheel``
package).
"""

from setuptools import setup

setup()
