#!/usr/bin/env python3
"""Tour of the unified ``repro.api`` Session layer.

One Session owns the whole runtime configuration; declarative plans
compile onto the batched engines and yield columnar result frames.

Run with::

    python examples/session_api_tour.py
"""

from repro.api import Session
from repro.frontend.configs import BASELINE_FRONTEND, TAILORED_FRONTEND
from repro.trace.instruction import CodeSection


def main() -> None:
    # Explicit argument > REPRO_* environment variable > default,
    # resolved exactly once, here.
    session = Session(instructions=120_000)
    print("runtime config:", session.config.describe())

    # Pipeline stages as typed methods.
    trace = session.trace("FT")
    print(
        f"\nFT trace: {trace.instruction_count()} instructions, "
        f"{trace.branch_count()} branches"
    )
    baseline = session.frontend("FT", BASELINE_FRONTEND)
    print(f"baseline branch MPKI on FT: {baseline.branch.mpki:.2f}")

    # A declarative sweep plan: workloads x configs x sections.
    plan = session.sweep(
        workloads=["FT", "LU", "CoMD", "gobmk"],
        configs=[BASELINE_FRONTEND, TAILORED_FRONTEND],
        sections=(CodeSection.TOTAL,),
    )
    frame = plan.execute()
    print(f"\nsweep frame: {len(frame)} rows, columns {frame.columns}")
    tailored = frame.select(config="tailored")
    for workload, mpki in zip(
        tailored.column("workload"), tailored.column("branch_mpki")
    ):
        print(f"  tailored branch MPKI on {workload}: {mpki:.2f}")

    # Any registered paper artefact, store-backed, as a frame.
    table3 = session.experiment("table3").execute()
    print("\nTable III via the orchestrator:")
    print(table3.to_csv())


if __name__ == "__main__":
    main()
