#!/usr/bin/env python3
"""Asymmetric CMP design-space study (the Section V evaluation).

Evaluates the four chip configurations of the paper -- Baseline,
Tailored, Asymmetric, and Asymmetric++ -- on a mix of HPC and desktop
workloads, reporting execution time, power, energy, and energy-delay,
plus the area budgets that justify adding the ninth core.

Run with::

    python examples/asymmetric_cmp_study.py
"""

from repro.experiments.common import format_table
from repro.power import core_area_power, evaluate_cmp_energy
from repro.power.cmp_power import cmp_area_mm2
from repro.uarch import (
    BASELINE_CORE,
    STANDARD_CMP_CONFIGS,
    TAILORED_CORE,
    profile_workload_frontend,
    run_on_cmp,
)
from repro.workloads import build_workload, get_workload

TRACE_INSTRUCTIONS = 150_000
WORKLOADS = ("FT", "LU", "CoMD", "CoEVP", "fma3d", "gobmk")


def area_report() -> str:
    rows = []
    for core in (BASELINE_CORE, TAILORED_CORE):
        budget = core_area_power(core)
        rows.append([
            core.name,
            f"{budget.total_area_mm2:.2f}",
            f"{budget.active_power_w:.2f}",
        ])
    for cmp in STANDARD_CMP_CONFIGS:
        rows.append([
            cmp.describe(),
            f"{cmp_area_mm2(cmp, include_l2=False):.1f}",
            "-",
        ])
    return format_table(["core / CMP", "area [mm2]", "power [W]"], rows)


def workload_report(name: str) -> str:
    profile = profile_workload_frontend(build_workload(get_workload(name)), TRACE_INSTRUCTIONS)
    rows = []
    reference = None
    for cmp in STANDARD_CMP_CONFIGS:
        run = run_on_cmp(profile, cmp)
        energy = evaluate_cmp_energy(run)
        if reference is None:
            reference = (run.execution_seconds, energy.average_power_w,
                         energy.energy_j, energy.energy_delay)
        rows.append([
            cmp.name,
            f"{run.execution_seconds / reference[0]:.3f}",
            f"{energy.average_power_w / reference[1]:.3f}",
            f"{energy.energy_j / reference[2]:.3f}",
            f"{energy.energy_delay / reference[3]:.3f}",
        ])
    return format_table(
        ["configuration", "time", "power", "energy", "energy-delay"], rows
    )


def main() -> None:
    print("Core and chip area/power budgets")
    print(area_report())
    for name in WORKLOADS:
        print(f"\n{name}: normalized to the Baseline CMP")
        print(workload_report(name))
    print("\nFor parallel HPC workloads the Asymmetric++ CMP (1 baseline + 8")
    print("tailored cores, same core-area budget) is the fastest and has the")
    print("best energy-delay; sequential desktop code sees no benefit, which")
    print("is why the baseline core is kept for the master thread.")


if __name__ == "__main__":
    main()
