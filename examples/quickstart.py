#!/usr/bin/env python3
"""Quickstart: characterize one HPC and one desktop workload.

Builds the synthetic FT (NPB) and gobmk (SPEC CPU INT) workloads,
measures the Section III code characteristics on their traces, and
simulates the paper's small-vs-big branch predictors on both -- a
five-minute tour of the library's main APIs.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import (
    analyze_basic_blocks,
    analyze_branch_bias,
    analyze_branch_mix,
    analyze_footprint,
    analyze_taken_directions,
)
from repro.frontend import make_predictor, simulate_branch_predictor, simulate_icache
from repro.trace import CodeSection
from repro.workloads import build_workload, get_workload

TRACE_INSTRUCTIONS = 200_000


def characterize(name: str) -> None:
    """Print the headline characteristics of one workload."""
    spec = get_workload(name)
    workload = build_workload(spec)
    trace = workload.trace(TRACE_INSTRUCTIONS)

    mix = analyze_branch_mix(trace)
    bias = analyze_branch_bias(trace)
    directions = analyze_taken_directions(trace)
    blocks = analyze_basic_blocks(trace)
    footprint = analyze_footprint(trace)

    print(f"\n=== {spec.name} ({spec.suite.label}) ===")
    print(f"  {spec.description}")
    print(f"  branch instructions        : {100 * mix.branch_fraction:.1f}% of the dynamic mix")
    print(f"  strongly biased branches   : {100 * bias.strongly_biased_fraction:.0f}%")
    print(f"  backward taken branches    : {100 * directions.backward_fraction:.0f}%")
    print(f"  average basic block        : {blocks.average_block_bytes:.0f} bytes")
    print(f"  distance between takens    : {blocks.average_taken_distance_bytes:.0f} bytes")
    print(f"  static footprint           : {footprint.static_kb:.0f} KB")
    print(f"  99% dynamic footprint      : {footprint.dynamic_footprint_kb:.1f} KB")

    for label, kind, budget, with_loop in (
        ("16KB tournament (baseline BP)", "tournament", "big", False),
        ("2KB tournament + loop BP     ", "tournament", "small", True),
        ("2KB TAGE                     ", "tage", "small", False),
    ):
        predictor = make_predictor(kind, budget, with_loop)
        mpki = simulate_branch_predictor(trace, predictor).mpki
        print(f"  branch MPKI with {label}: {mpki:.2f}")

    for size_kb, line in ((32, 64), (16, 128)):
        mpki = simulate_icache(
            trace, size_bytes=size_kb * 1024, line_bytes=line, associativity=8
        ).mpki
        print(f"  I-cache MPKI with {size_kb}KB/{line}B lines: {mpki:.2f}")

    if not spec.is_sequential:
        serial = analyze_branch_mix(trace, CodeSection.SERIAL).branch_fraction
        parallel = analyze_branch_mix(trace, CodeSection.PARALLEL).branch_fraction
        print(f"  serial vs parallel branch share: "
              f"{100 * serial:.1f}% vs {100 * parallel:.1f}%")


def main() -> None:
    print("Front-end rebalancing quickstart")
    print("(characteristics from Section III, structures from Section IV)")
    characterize("FT")
    characterize("gobmk")
    print("\nHPC code has fewer, more biased, mostly backward-taken branches,")
    print("a small hot footprint and long basic blocks -- which is why its")
    print("front-end can be much smaller than a desktop-tuned one.")


if __name__ == "__main__":
    main()
