#!/usr/bin/env python3
"""Front-end sizing study for a custom HPC application.

Shows how a user would apply the library to their *own* code rather
than the paper's benchmarks: describe the application as a
:class:`WorkloadSpec`, then sweep branch predictors, BTBs, and I-cache
geometries over its synthetic trace to pick the smallest front-end that
does not hurt it -- the Section IV methodology as a reusable recipe.

Run with::

    python examples/frontend_sizing_study.py
"""

from repro.experiments.common import format_table
from repro.frontend import make_predictor, simulate_branch_predictor, simulate_btb, simulate_icache
from repro.workloads import SectionProfile, Suite, WorkloadSpec, build_workload

TRACE_INSTRUCTIONS = 200_000

# A made-up stencil application: loop-dominated parallel sections with a
# small hot footprint, plus a coordination-heavy serial section.
MY_APP = WorkloadSpec(
    name="my-stencil-app",
    suite=Suite.NPB,
    parallel=SectionProfile(
        branch_fraction=0.06,
        loop_share=0.7,
        avg_trip_count=32.0,
        loop_regularity=0.9,
        hot_code_kb=6.0,
        bytes_per_instruction=5.0,
    ),
    serial=SectionProfile(
        branch_fraction=0.17,
        loop_share=0.55,
        avg_trip_count=10.0,
        loop_regularity=0.6,
        hot_code_kb=8.0,
    ),
    serial_fraction=0.03,
    static_code_kb=96.0,
    threads=8,
    description="synthetic 3-D stencil with halo exchange",
)


def sweep_branch_predictors(trace) -> str:
    rows = []
    for kind in ("gshare", "tournament", "tage"):
        for budget in ("big", "small"):
            for with_loop in (False, True):
                predictor = make_predictor(kind, budget, with_loop)
                mpki = simulate_branch_predictor(trace, predictor).mpki
                rows.append([
                    ("L-" if with_loop else "") + f"{kind}-{budget}",
                    f"{predictor.storage_kb():.2f}",
                    f"{mpki:.2f}",
                ])
    return format_table(["predictor", "budget [KB]", "branch MPKI"], rows)


def sweep_btb(trace) -> str:
    rows = []
    for entries in (128, 256, 512, 1024, 2048):
        mpki = simulate_btb(trace, entries=entries, associativity=4).mpki
        rows.append([f"{entries} entries", f"{mpki:.2f}"])
    return format_table(["BTB", "MPKI"], rows)


def sweep_icache(trace) -> str:
    rows = []
    for size_kb in (8, 16, 32):
        for line in (64, 128):
            mpki = simulate_icache(
                trace, size_bytes=size_kb * 1024, line_bytes=line, associativity=8
            ).mpki
            rows.append([f"{size_kb}KB / {line}B lines", f"{mpki:.2f}"])
    return format_table(["I-cache", "MPKI"], rows)


def main() -> None:
    workload = build_workload(MY_APP)
    trace = workload.trace(TRACE_INSTRUCTIONS)
    print(f"Front-end sizing study for {MY_APP.name!r}")
    print(f"trace: {trace.instruction_count()} instructions, "
          f"{trace.branch_count()} branches\n")
    print(sweep_branch_predictors(trace))
    print()
    print(sweep_btb(trace))
    print()
    print(sweep_icache(trace))
    print("\nPick the smallest configuration whose MPKI matches the large one;")
    print("for loop-dominated HPC code that is typically a 2KB predictor with")
    print("a loop predictor, a 256-entry BTB, and a 16KB I-cache with 128B lines.")


if __name__ == "__main__":
    main()
