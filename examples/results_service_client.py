#!/usr/bin/env python3
"""Results-service tour: a plain-HTTP client against ``repro-frontend serve``.

Everything client-side here is stdlib ``urllib`` against the service's
JSON wire format -- point ``SERVICE_URL`` at a deployed
``repro-frontend serve --queue-dir /shared/queue`` and the client half
works unchanged.  To stay self-contained, the script also hosts the
service in-process (``background_server``) with a worker thread
draining the queue, so the cold miss -> 202 -> poll -> 200 round trip
runs end to end on one machine.

Run with::

    PYTHONPATH=src python examples/results_service_client.py
"""

import json
import os
import tempfile
import threading
import time
import urllib.request

from repro.api.runtime_config import RuntimeConfig
from repro.exec.queue import serve_queue
from repro.serve import background_server

INSTRUCTIONS = 20_000


def get(url: str) -> tuple[int, bytes]:
    """One GET; 2xx only (urllib raises on 4xx/5xx)."""
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, response.read()


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        os.environ["REPRO_RESULT_CACHE_DIR"] = os.path.join(scratch, "store")
        queue_dir = os.path.join(scratch, "queue")
        os.makedirs(queue_dir)
        config = RuntimeConfig.from_environment(instructions=INSTRUCTIONS)

        # Service + one worker.  In production these are separate
        # processes: `repro-frontend serve` and `repro-frontend worker`
        # sharing --queue-dir; the wire traffic below is identical.
        worker = threading.Thread(
            target=serve_queue, args=(queue_dir,), kwargs={"max_idle": 3.0}
        )
        worker.start()
        with background_server(config=config, queue_dir=queue_dir) as server:
            print(f"service listening on {server.url}")

            # Cold request: the store is empty, so the service enqueues
            # the experiment and hands back a polling URL.
            status, body = get(server.url + "/experiment/fig5")
            print(f"\nGET /experiment/fig5 -> {status}")
            if status == 202:
                job = json.loads(body)
                print(f"  enqueued as job {job['job']}, polling {job['poll']}")
                while True:
                    status, body = get(server.url + job["poll"])
                    if status == 200:
                        break
                    time.sleep(0.5)
            payload = json.loads(body)
            print(f"  done: {len(payload['rows'])} rows, key {payload['key'][:16]}...")

            # Warm requests now come straight from the store, with
            # slicing on the wire: pick a frame, filter, project.
            status, body = get(
                server.url
                + "/experiment/fig5?frame=workloads&workload=FT"
                + "&columns=workload,tage-big,tournament-big"
            )
            sliced = json.loads(body)
            print(f"\nFT slice ({status}): {sliced['columns']} -> {sliced['rows']}")

            # Same artifact as CSV, for spreadsheets and shell pipelines.
            status, body = get(server.url + "/experiment/fig5?format=csv")
            print(f"\nCSV head: {body.decode().splitlines()[0]}")

            # The service keeps per-route counters and cache stats.
            _, body = get(server.url + "/stats")
            route = json.loads(body)["serve"]["routes"]["experiment"]
            print(
                f"\n/experiment route: {route['requests']} requests, "
                f"{route['hits']} hits, {route['misses']} misses, "
                f"p50 {route.get('p50_ms', 0.0):.2f} ms"
            )
        worker.join()


if __name__ == "__main__":
    main()
