"""Benchmark: regenerate Figure 8: I-cache MPKI versus size and associativity."""

from repro.experiments import run_fig08, format_fig08

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig08_icache(benchmark):
    """Figure 8: I-cache MPKI versus size and associativity."""
    result = run_once(benchmark, run_fig08, instructions=BENCH_INSTRUCTIONS)
    show("Figure 8: I-cache MPKI versus size and associativity", format_fig08(result))
