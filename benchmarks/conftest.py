"""Benchmark harness configuration.

The shared helpers live in :mod:`bench_common`; this conftest only
keeps backwards-compatible re-exports and ensures the benchmarks
directory is importable when the suite is collected from the repo root.
"""

from __future__ import annotations

from bench_common import BENCH_INSTRUCTIONS, run_once, show

__all__ = ["BENCH_INSTRUCTIONS", "run_once", "show"]
