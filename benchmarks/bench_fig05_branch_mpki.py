"""Benchmark: regenerate Figure 5: branch MPKI per predictor configuration and suite."""

from repro.experiments import run_fig05, format_fig05

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig05_branch_mpki(benchmark):
    """Figure 5: branch MPKI per predictor configuration and suite."""
    result = run_once(benchmark, run_fig05, instructions=BENCH_INSTRUCTIONS)
    show("Figure 5: branch MPKI per predictor configuration and suite", format_fig05(result))
