"""Benchmark: regenerate Figure 4: basic-block length and taken-branch distance."""

from repro.experiments import run_fig04, format_fig04

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig04_basic_blocks(benchmark):
    """Figure 4: basic-block length and taken-branch distance."""
    result = run_once(benchmark, run_fig04, instructions=BENCH_INSTRUCTIONS)
    show("Figure 4: basic-block length and taken-branch distance", format_fig04(result))
