"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they sweep the knobs behind the
tailored front-end (loop-predictor capacity, TAGE table count for the
small budget, I-cache line width beyond 128B, and the serial-fraction
sensitivity of the asymmetric CMP benefit).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.frontend.predictors import (
    GsharePredictor,
    LoopPredictor,
    PredictorWithLoop,
    TagePredictor,
)
from repro.frontend.simulation import simulate_branch_predictor, simulate_icache
from repro.uarch import ASYMMETRIC_PLUS_CMP, BASELINE_CMP, profile_workload_frontend, run_on_cmp
from repro.workloads import build_workload, get_workload

from bench_common import BENCH_INSTRUCTIONS, run_once, show

HPC_SAMPLE = ("FT", "botsspar", "imagick", "CoMD")
DESKTOP_SAMPLE = ("gobmk", "astar")


def _trace(name):
    return build_workload(get_workload(name)).trace(BENCH_INSTRUCTIONS)


def _loop_predictor_sweep():
    rows = []
    for entries in (16, 32, 64, 128):
        mpki_values = []
        for name in HPC_SAMPLE:
            predictor = PredictorWithLoop(GsharePredictor(13), LoopPredictor(entries=entries))
            mpki_values.append(simulate_branch_predictor(_trace(name), predictor).mpki)
        rows.append([f"{entries}-entry LBP",
                     f"{sum(mpki_values) / len(mpki_values):.2f}"])
    return format_table(["loop predictor", "HPC branch MPKI (gshare-small base)"], rows)


def test_ablation_loop_predictor_entries(benchmark):
    """Loop predictor capacity versus HPC branch MPKI."""
    show("Ablation: loop predictor entries", run_once(benchmark, _loop_predictor_sweep))


def _tage_table_sweep():
    rows = []
    for tables in (1, 2, 4, 6):
        mpki_values = []
        for name in HPC_SAMPLE + DESKTOP_SAMPLE:
            predictor = TagePredictor(
                num_tables=tables, entries_per_table=256, tag_bits=9,
                min_history=4, max_history=max(16, 8 * tables), base_entries=4096,
            )
            mpki_values.append(simulate_branch_predictor(_trace(name), predictor).mpki)
        kb = predictor.storage_kb()
        rows.append([f"{tables} tagged tables", f"{kb:.2f}",
                     f"{sum(mpki_values) / len(mpki_values):.2f}"])
    return format_table(["small TAGE", "budget [KB]", "avg branch MPKI"], rows)


def test_ablation_tage_tables(benchmark):
    """Tagged-table count of the ~2KB TAGE versus MPKI."""
    show("Ablation: small-TAGE tagged tables", run_once(benchmark, _tage_table_sweep))


def _line_width_sweep():
    rows = []
    for line_bytes in (32, 64, 128, 256):
        hpc = [
            simulate_icache(_trace(name), size_bytes=16 * 1024,
                            line_bytes=line_bytes, associativity=8).mpki
            for name in HPC_SAMPLE
        ]
        desktop = [
            simulate_icache(_trace(name), size_bytes=16 * 1024,
                            line_bytes=line_bytes, associativity=8).mpki
            for name in DESKTOP_SAMPLE
        ]
        rows.append([f"{line_bytes}B lines",
                     f"{sum(hpc) / len(hpc):.2f}",
                     f"{sum(desktop) / len(desktop):.2f}"])
    return format_table(["16KB I-cache", "HPC MPKI", "desktop MPKI"], rows)


def test_ablation_icache_line_width(benchmark):
    """I-cache line width beyond the paper's 128B."""
    show("Ablation: I-cache line width", run_once(benchmark, _line_width_sweep))


def _serial_fraction_sweep():
    rows = []
    for name in ("FT", "CoMD", "CoEVP"):
        spec = get_workload(name)
        profile = profile_workload_frontend(build_workload(spec), BENCH_INSTRUCTIONS)
        baseline = run_on_cmp(profile, BASELINE_CMP).execution_seconds
        plus = run_on_cmp(profile, ASYMMETRIC_PLUS_CMP).execution_seconds
        rows.append([name, f"{spec.serial_fraction:.2f}", f"{plus / baseline:.3f}"])
    return format_table(
        ["workload", "serial fraction", "Asymmetric++ time (normalized)"], rows
    )


def test_ablation_serial_fraction(benchmark):
    """Serial-section share versus the Asymmetric++ CMP benefit."""
    show("Ablation: serial fraction sensitivity", run_once(benchmark, _serial_fraction_sweep))
