"""Benchmark: regenerate Figure 9: I-cache MPKI versus line width for selected workloads."""

from repro.experiments import run_fig09, format_fig09

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig09_icache_lines(benchmark):
    """Figure 9: I-cache MPKI versus line width for selected workloads."""
    result = run_once(benchmark, run_fig09, instructions=BENCH_INSTRUCTIONS)
    show("Figure 9: I-cache MPKI versus line width for selected workloads", format_fig09(result))
