"""Cold-path sweep benchmarks: trace generation end to end.

The hot-path microbenchmarks time individual engine stages; these time
what a user actually waits for on a fresh machine -- a figure sweep
whose every trace must be generated (or loaded from the shared disk
cache).  Each cold round starts from completely empty caches: the
in-process trace cache, the workload-builder cache (so program
synthesis and trace compilation are included), and a scratch disk
cache directory.

    pytest benchmarks/bench_cold_sweep.py

Like ``bench_hotpath.py`` these use fixed sizes (not
``REPRO_BENCH_INSTRUCTIONS``) so numbers stay comparable across
commits.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest

from repro.experiments.common import TRACE_CACHE_DIR_VARIABLE, clear_trace_cache
from repro.experiments.fig05_branch_mpki import run_fig05
from repro.workloads.suites import Suite

#: Dynamic trace length per workload of the cold sweep.  Small enough
#: for a few benchmark rounds, long enough that generation dominates.
COLD_INSTRUCTIONS = 60_000

#: The sweep covers one full HPC suite (10 NPB workloads).
COLD_SUITES = (Suite.NPB,)


@pytest.fixture()
def scratch_cache_dir():
    """Point the disk trace cache at a fresh scratch directory."""
    directory = tempfile.mkdtemp(prefix="repro-bench-cache-")
    previous = os.environ.get(TRACE_CACHE_DIR_VARIABLE)
    os.environ[TRACE_CACHE_DIR_VARIABLE] = directory
    try:
        yield directory
    finally:
        if previous is None:
            os.environ.pop(TRACE_CACHE_DIR_VARIABLE, None)
        else:
            os.environ[TRACE_CACHE_DIR_VARIABLE] = previous
        shutil.rmtree(directory, ignore_errors=True)
        clear_trace_cache()


def test_cold_fig5_sweep(benchmark, scratch_cache_dir):
    """Figure 5 over NPB from empty caches (generation included)."""

    def reset():
        clear_trace_cache()
        shutil.rmtree(scratch_cache_dir, ignore_errors=True)
        os.makedirs(scratch_cache_dir, exist_ok=True)

    def sweep():
        return run_fig05(instructions=COLD_INSTRUCTIONS, suites=list(COLD_SUITES))

    result = benchmark.pedantic(sweep, setup=reset, rounds=3, iterations=1)
    assert len(result.per_workload) == 10


def test_warm_disk_fig5_sweep(benchmark, scratch_cache_dir):
    """Same sweep with a populated disk cache but a cold process.

    Measures what the second driver process on a machine pays: traces
    come from the shared ``.npz`` layer instead of being regenerated.
    """
    run_fig05(instructions=COLD_INSTRUCTIONS, suites=list(COLD_SUITES))

    def reset():
        clear_trace_cache()  # drop memory layers, keep the disk cache

    def sweep():
        return run_fig05(instructions=COLD_INSTRUCTIONS, suites=list(COLD_SUITES))

    result = benchmark.pedantic(sweep, setup=reset, rounds=3, iterations=1)
    assert len(result.per_workload) == 10
