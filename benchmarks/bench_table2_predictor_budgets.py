"""Benchmark: regenerate Table II: branch predictor size parameters and cost."""

from repro.experiments import run_table2, format_table2

from bench_common import run_once, show


def test_table2_predictor_budgets(benchmark):
    """Table II: branch predictor size parameters and cost."""
    result = run_once(benchmark, run_table2)
    show("Table II: branch predictor size parameters and cost", format_table2(result))
