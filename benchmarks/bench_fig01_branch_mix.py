"""Benchmark: regenerate Figure 1: dynamic branch instruction breakdown per suite."""

from repro.experiments import run_fig01, format_fig01

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig01_branch_mix(benchmark):
    """Figure 1: dynamic branch instruction breakdown per suite."""
    result = run_once(benchmark, run_fig01, instructions=BENCH_INSTRUCTIONS)
    show("Figure 1: dynamic branch instruction breakdown per suite", format_fig01(result))
