"""Benchmark: regenerate Table I: backward vs forward taken branches per suite."""

from repro.experiments import run_table1, format_table1

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_table1_taken_direction(benchmark):
    """Table I: backward vs forward taken branches per suite."""
    result = run_once(benchmark, run_table1, instructions=BENCH_INSTRUCTIONS)
    show("Table I: backward vs forward taken branches per suite", format_table1(result))
