"""Microbenchmarks of the trace-engine and simulator hot paths.

Times the three front-end hot paths -- trace generation, branch-record
materialization, and the full ``simulate_frontend`` walk -- at two
trace lengths, so speedups (and regressions) of the columnar engine
show up directly in the pytest-benchmark table:

    pytest benchmarks/bench_hotpath.py

Unlike the figure benchmarks these do not honour
``REPRO_BENCH_INSTRUCTIONS``; the two fixed sizes keep numbers
comparable across commits.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from repro.api.frame import ResultFrame
from repro.explore import frontend_grid
from repro.exec import ExecutionSettings, QueueWorker, enqueue_campaign
from repro.frontend.configs import BASELINE_FRONTEND
from repro.frontend.simulation import simulate_frontend
from repro.power import evaluate_cmp_energy
from repro.trace.compiler import CompiledTraceGenerator, compile_schedule
from repro.trace.events import Trace
from repro.trace.execution import TraceGenerator
from repro.uarch import (
    STANDARD_CMP_CONFIGS,
    clear_profile_cache,
    profile_workload_frontend,
    run_on_cmp,
)
from repro.workloads import build_workload, get_workload, workload_trace

TRACE_LENGTHS = (60_000, 600_000)

#: One HPC and one desktop workload: long loopy blocks vs branchy code.
WORKLOAD = "FT"


def _workload():
    return build_workload(get_workload(WORKLOAD))


@pytest.mark.parametrize("instructions", TRACE_LENGTHS)
def test_trace_generation(benchmark, instructions):
    """Generate the dynamic trace through the compiled segment engine.

    This is the cold-trace path every workload uses
    (``SyntheticWorkload.trace`` routes through the compiled schedule);
    compilation itself is memoized and excluded by a warm-up run.
    """
    workload = _workload()
    compile_schedule(workload.program, workload.schedule)  # warm the memo
    # Drive the generator directly: workload.trace() would retain every
    # round's trace in the workload-level cache for the whole process.
    seeds = iter(range(1_000, 100_000))

    def generate():
        generator = CompiledTraceGenerator(
            workload.program, workload.schedule, seed=next(seeds)
        )
        return generator.run(instructions)

    trace = benchmark(generate)
    assert trace.instruction_count() >= instructions


@pytest.mark.parametrize("instructions", TRACE_LENGTHS)
def test_trace_generation_reference(benchmark, instructions):
    """Generate the same trace via the reference tree walk.

    Kept as the baseline the compiled engine is measured against (the
    two are asserted bit-identical in the test suite).
    """
    workload = _workload()
    seeds = iter(range(1_000, 100_000))

    def generate():
        generator = TraceGenerator(
            workload.program, workload.schedule, seed=next(seeds)
        )
        return generator.run(instructions)

    trace = benchmark(generate)
    assert trace.instruction_count() >= instructions


@pytest.mark.parametrize("instructions", TRACE_LENGTHS)
def test_branch_records(benchmark, instructions):
    """Materialize branch records from a fresh columnar view."""
    workload = _workload()
    source = workload.trace(instructions)

    def records():
        # Rebuild the Trace wrapper so per-trace caches start cold.
        trace = Trace.from_columns(
            source.program,
            source.block_ids,
            source.taken_column,
            source.target_column,
            source.section_column,
            name=source.name,
        )
        return trace.branch_records()

    result = benchmark(records)
    assert len(result) > 0


@pytest.mark.parametrize("instructions", TRACE_LENGTHS)
def test_simulate_frontend(benchmark, instructions):
    """Branch predictor + BTB + I-cache over one trace."""
    workload = _workload()
    trace = workload.trace(instructions)
    trace.branch_columns()  # steady-state: columns already gathered

    def frontend():
        return simulate_frontend(trace, BASELINE_FRONTEND)

    result = benchmark(frontend)
    assert result.branch.conditional_branches > 0
    assert result.icache.accesses > 0


@pytest.mark.parametrize("instructions", TRACE_LENGTHS)
def test_section_v_stack(benchmark, instructions):
    """The per-workload Section V pipeline: profile + schedule + power.

    Measures one workload's front-end profile (both core flavours, all
    sections, through the batched ``simulate_frontend_many`` engine)
    plus the CMP runs and energy evaluation for the four Figure 10
    chips.  The trace is pre-warmed in the shared cache and the profile
    cache is cleared each round, so the number reflects the simulation
    engine rather than trace generation or memoization.
    """
    workload = _workload()
    workload_trace(workload.spec, instructions)  # warm the shared trace cache

    def stack():
        clear_profile_cache()
        profile = profile_workload_frontend(workload, instructions)
        return [
            evaluate_cmp_energy(run_on_cmp(profile, cmp))
            for cmp in STANDARD_CMP_CONFIGS
        ]

    results = benchmark(stack)
    assert len(results) == len(STANDARD_CMP_CONFIGS)
    assert all(result.energy_j > 0 for result in results)


def _queue_identity(args):
    return args


def test_queue_item_cycle(benchmark, tmp_path):
    """Per-item overhead of the durable work-queue executor.

    Times the full queue lifecycle -- campaign enqueue to disk, lease
    claim, heartbeat start/stop, first-writer-wins publication, item
    retirement -- for a 64-item campaign drained by one in-process
    ``QueueWorker``.  The worker body is an identity function, so this
    is pure executor overhead: the price ``--executor queue`` adds per
    item over the in-process supervised pool.
    """
    items = [(index, float(index)) for index in range(64)]
    settings = ExecutionSettings()
    rounds = iter(range(1_000))

    def cycle():
        queue_dir = str(tmp_path / f"queue-{next(rounds)}")
        campaign = enqueue_campaign(_queue_identity, items, settings, queue_dir)
        return QueueWorker(campaign).drain()

    resolved = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert resolved == len(items)


def test_explore_grid(benchmark):
    """Configs/sec of the design-space exploration path.

    Compiles the 96-point ``frontend_grid()`` preset onto the batched
    ``simulate_frontend_many`` engine through ``Session.explore`` and
    times one full exploration of it -- chunked evaluation, grid-frame
    assembly, Pareto frontier, sensitivity tables -- with the result
    store disabled so every round re-simulates.  The trace is
    pre-warmed, so ``points / (min_ms / 1e3)`` is the configs/sec
    number tracked in BENCH_hotpath.json.
    """
    grid = frontend_grid()
    points = len(grid.points())
    session = Session(
        instructions=60_000, trace_cache_dir=None, result_cache_dir=None
    )
    plan = session.explore(grid, workloads=[WORKLOAD], use_store=False)
    plan.result()  # warm the shared trace cache and decoded streams

    def explore():
        return plan.result()

    result = benchmark(explore)
    assert result.chunks_computed == result.chunks_total
    assert len(result.frames["grid"].rows()) == points
    benchmark.extra_info["configs"] = points
    benchmark.extra_info["configs_per_s"] = round(
        points / benchmark.stats.stats.mean
    )


def test_serve_warm_request(benchmark, tmp_path, monkeypatch):
    """End-to-end latency of a warm ``GET /experiment/...`` request.

    Runs the orchestrator once so the result store holds ``fig5``, then
    times complete HTTP round trips against a live ``ResultsServer`` on
    the loopback interface -- connection, request parse, store load,
    frame encode, response.  Every request is served entirely from the
    store (the server has no queue, so a miss would be a 503 and fail
    the assertion); this is the number the PR 10 acceptance bound
    (p50 < 5 ms) tracks.
    """
    import urllib.request

    from repro.api import runtime_config as rc
    from repro.results.orchestrator import run_experiments
    from repro.results.store import clear_result_store
    from repro.serve import background_server

    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", "none")
    clear_result_store()
    run_experiments(["fig5"], instructions=6_000)
    config = rc.RuntimeConfig.from_environment(instructions=6_000)
    with background_server(config=config, queue_dir=None) as server:
        url = server.url + "/experiment/fig5"

        def request():
            with urllib.request.urlopen(url, timeout=30) as response:
                return response.status, response.read()

        status, body = benchmark(request)
    assert status == 200
    assert body.startswith(b'{"columns"')
    clear_result_store()


def test_serve_cold_miss_request(benchmark, tmp_path, monkeypatch):
    """Latency of a cold miss: resolve, enqueue, and answer 202.

    Each round asks for a budget no worker has computed, so the server
    resolves the request to a fresh store key, enqueues an interactive-
    priority item onto the durable queue, and returns the ``/job/<id>``
    polling URL.  This is the full price a client pays before a worker
    even starts -- the other half of the cold path measured by
    ``test_serve_warm_request``.
    """
    import urllib.request

    from repro.api import runtime_config as rc
    from repro.results.store import clear_result_store
    from repro.serve import background_server

    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", "none")
    clear_result_store()
    queue_dir = tmp_path / "queue"
    queue_dir.mkdir()
    config = rc.RuntimeConfig.from_environment(instructions=6_000)
    budgets = iter(range(7_000, 1_000_000))
    with background_server(config=config, queue_dir=str(queue_dir)) as server:

        def request():
            path = f"/experiment/fig5?instructions={next(budgets)}"
            with urllib.request.urlopen(server.url + path, timeout=30) as response:
                return response.status

        status = benchmark.pedantic(request, rounds=10, iterations=1)
    assert status == 202
    clear_result_store()


def test_frame_payload_round_trip(benchmark):
    """Serialize and re-validate a stored ResultFrame payload.

    The result store persists every experiment payload as versioned
    columnar JSON; this times the full round trip -- payload build,
    JSON encode, decode, schema validation -- on a per-workload frame
    scaled to ~8k rows (two orders above the largest real experiment,
    so store-layer regressions are visible well before they matter).
    """
    rows = [
        (f"workload-{index % 41}", metric, 1.0 + index / 7, 2.0 + index / 11)
        for index in range(2_000)
        for metric in ("execution time", "power", "energy", "energy-delay")
    ]
    frame = ResultFrame.from_rows(
        ("workload", "metric", "baseline", "tailored"), rows
    )

    def round_trip():
        return ResultFrame.from_payload(json.loads(json.dumps(frame.to_payload())))

    result = benchmark(round_trip)
    assert result.columns == frame.columns
    assert len(result.rows()) == len(rows)
