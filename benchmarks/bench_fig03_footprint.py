"""Benchmark: regenerate Figure 3: static and 99%-dynamic instruction footprints."""

from repro.experiments import run_fig03, format_fig03

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig03_footprint(benchmark):
    """Figure 3: static and 99%-dynamic instruction footprints."""
    result = run_once(benchmark, run_fig03, instructions=BENCH_INSTRUCTIONS)
    show("Figure 3: static and 99%-dynamic instruction footprints", format_fig03(result))
