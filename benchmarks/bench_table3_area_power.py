"""Benchmark: regenerate Table III: front-end area and power at the core level."""

from repro.experiments import run_table3, format_table3

from bench_common import run_once, show


def test_table3_area_power(benchmark):
    """Table III: front-end area and power at the core level."""
    result = run_once(benchmark, run_table3)
    show("Table III: front-end area and power at the core level", format_table3(result))
