"""Benchmark: regenerate Figure 7: BTB MPKI versus entries and associativity."""

from repro.experiments import run_fig07, format_fig07

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig07_btb(benchmark):
    """Figure 7: BTB MPKI versus entries and associativity."""
    result = run_once(benchmark, run_fig07, instructions=BENCH_INSTRUCTIONS)
    show("Figure 7: BTB MPKI versus entries and associativity", format_fig07(result))
