"""Benchmark: regenerate Figure 11: per-benchmark execution time per CMP configuration."""

from repro.experiments import run_fig11, format_fig11

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig11_per_benchmark_time(benchmark):
    """Figure 11: per-benchmark execution time per CMP configuration."""
    result = run_once(benchmark, run_fig11, instructions=BENCH_INSTRUCTIONS)
    show("Figure 11: per-benchmark execution time per CMP configuration", format_fig11(result))
