"""Benchmark: regenerate Figure 2: conditional branch direction distribution per suite."""

from repro.experiments import run_fig02, format_fig02

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig02_branch_bias(benchmark):
    """Figure 2: conditional branch direction distribution per suite."""
    result = run_once(benchmark, run_fig02, instructions=BENCH_INSTRUCTIONS)
    show("Figure 2: conditional branch direction distribution per suite", format_fig02(result))
