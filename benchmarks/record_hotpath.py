#!/usr/bin/env python
"""Record hot-path and cold-sweep benchmark results across PRs.

Runs ``bench_hotpath.py`` and ``bench_cold_sweep.py`` under
pytest-benchmark and appends a compact entry (min/mean milliseconds per
benchmark) to ``BENCH_hotpath.json`` at the repository root, so the
performance trajectory of the engine is tracked commit over commit::

    PYTHONPATH=src python benchmarks/record_hotpath.py [--label "PR 3"]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_hotpath.json")
BENCH_FILES = ("benchmarks/bench_hotpath.py", "benchmarks/bench_cold_sweep.py")


def _git_revision() -> str:
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    # Mark entries recorded from an uncommitted tree, so numbers are
    # never attributed to a commit that does not contain the change.
    return revision + ("-dirty" if status else "")


def _run_benchmarks(json_path: str) -> None:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            *BENCH_FILES,
            "-q",
            "--benchmark-disable-gc",
            f"--benchmark-json={json_path}",
        ],
        cwd=REPO_ROOT,
        env=env,
        check=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label", default=None, help="optional label stored with the entry"
    )
    args = parser.parse_args(argv)

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        _run_benchmarks(json_path)
        with open(json_path) as handle:
            raw = json.load(handle)
    finally:
        os.unlink(json_path)

    results = {
        bench["name"]: {
            "min_ms": round(bench["stats"]["min"] * 1e3, 3),
            "mean_ms": round(bench["stats"]["mean"] * 1e3, 3),
        }
        for bench in raw["benchmarks"]
    }
    entry = {
        "commit": _git_revision(),
        "date": datetime.date.today().isoformat(),
        "results": dict(sorted(results.items())),
    }
    if args.label:
        entry["label"] = args.label

    history = {"entries": []}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            history = json.load(handle)
    history["entries"].append(entry)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    print(f"recorded {len(results)} benchmarks to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
