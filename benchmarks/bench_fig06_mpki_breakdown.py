"""Benchmark: regenerate Figure 6: gshare branch MPKI breakdown for selected workloads."""

from repro.experiments import run_fig06, format_fig06

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig06_mpki_breakdown(benchmark):
    """Figure 6: gshare branch MPKI breakdown for selected workloads."""
    result = run_once(benchmark, run_fig06, instructions=BENCH_INSTRUCTIONS)
    show("Figure 6: gshare branch MPKI breakdown for selected workloads", format_fig06(result))
