"""Shared helpers of the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints
the same rows the paper reports.  The trace length per workload is
controlled by the ``REPRO_BENCH_INSTRUCTIONS`` environment variable
(default 60000) so the full sweep finishes in minutes; raise it for
higher-fidelity numbers.

Kept out of ``conftest.py`` so importing the helpers never races the
test suite's own ``conftest`` for the ``sys.modules`` slot.
"""

from __future__ import annotations

import os

#: Dynamic trace length per workload used by the benchmarks.
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(title: str, text: str) -> None:
    """Print a regenerated table/figure below the benchmark timings."""
    print()
    print(f"===== {title} =====")
    print(text)
