"""Benchmark: regenerate Figure 10: normalized time/power/energy/ED per CMP configuration."""

from repro.experiments import run_fig10, format_fig10

from bench_common import BENCH_INSTRUCTIONS, run_once, show


def test_fig10_cmp_configs(benchmark):
    """Figure 10: normalized time/power/energy/ED per CMP configuration."""
    result = run_once(benchmark, run_fig10, instructions=BENCH_INSTRUCTIONS)
    show("Figure 10: normalized time/power/energy/ED per CMP configuration", format_fig10(result))
